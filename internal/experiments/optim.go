package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vmm"
)

// This file reproduces the optimization studies: Fig. 6 (mask/unmask
// acceleration), Fig. 7 (VM-exit breakdown and EOI acceleration) and
// Fig. 12 (all optimizations at aggregate 10 GbE). Fig. 6 shards its
// VM-count axis, Fig. 7 its two tracing runs, Fig. 12 its optimization
// ladder.

func init() {
	registerPoints("fig06", "CPU utilization and throughput in SR-IOV with a 64-bit RHEL5U1 HVM guest",
		fig06Points(), buildFig06)
	registerPoints("fig07", "Virtualization overhead per second, based on VM-exit events",
		fig07Points(), buildFig07)
	registerPoints("fig12", "Impact of the optimizations for SR-IOV with aggregate 10 Gbps Ethernet",
		fig12Points(), buildFig12)
}

// fig06VMCounts is Fig. 6's x-axis: guests sharing one 1 GbE port.
var fig06VMCounts = []int{1, 2, 3, 4, 5, 6, 7}

// fig06Measure is one VM count's pair of runs.
type fig06Measure struct {
	dom0Unopt, dom0Opt float64
	tputUnopt, tputOpt float64 // Mbps
}

func fig06Points() []Point {
	pts := make([]Point, 0, len(fig06VMCounts))
	for _, n := range fig06VMCounts {
		n := n
		pts = append(pts, Point{Label: fmt.Sprintf("%d-VM", n), Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
			rate := perPortRate(n, 1)
			// Warm past the dynamic moderation's first pps sample so shared
			// ports measure at the settled interrupt rate.
			unopt := runSRIOV(core.Config{Seed: seed, Ports: 1, Obs: reg, Arena: arena}, n,
				vmm.HVM, vmm.KernelRHEL5, dynamicPolicy, rate, aicWarm)
			opt := runSRIOV(core.Config{Seed: seed, Ports: 1, Opts: vmm.Optimizations{MaskAccel: true}, Obs: reg, Arena: arena}, n,
				vmm.HVM, vmm.KernelRHEL5, dynamicPolicy, rate, aicWarm)
			return fig06Measure{
				dom0Unopt: unopt.util.Dom0, dom0Opt: opt.util.Dom0,
				tputUnopt: unopt.goodput.Mbps(), tputOpt: opt.goodput.Mbps(),
			}
		}})
	}
	return pts
}

// buildFig06 assembles §5.1: 1–7 HVM guests (RHEL5U1, which masks/unmasks
// MSI around every interrupt) sharing one 1 GbE port; dom0 CPU with mask
// emulation in the device model vs in the hypervisor.
func buildFig06(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig06",
		Title: "CPU utilization and throughput, SR-IOV, RHEL5U1 HVM, one 1 GbE port",
		Description: "n guests share one port; the horizontal axis is the guest count. " +
			"Unoptimized, MSI mask/unmask bounces through the dom0 device model; " +
			"optimized, the hypervisor emulates it directly (§5.1).",
		PaperRef: []string{
			"dom0 CPU rises from 17% (1 VM) to 30% (7 VMs) unoptimized",
			"dom0 CPU drops to ~3% in all cases with the optimization",
			"throughput stays flat at the line rate as VM# scales",
		},
	}
	dom0Unopt := f.AddSeries("dom0-unopt", "%")
	dom0Opt := f.AddSeries("dom0-opt", "%")
	tputUnopt := f.AddSeries("throughput-unopt", "Mbps")
	tputOpt := f.AddSeries("throughput-opt", "Mbps")

	for i, n := range fig06VMCounts {
		m := results[i].(fig06Measure)
		label := fmt.Sprintf("%d-VM", n)
		dom0Unopt.Add(label, m.dom0Unopt)
		tputUnopt.Add(label, m.tputUnopt)
		dom0Opt.Add(label, m.dom0Opt)
		tputOpt.Add(label, m.tputOpt)
	}

	one, _ := dom0Unopt.Y("1-VM")
	seven, _ := dom0Unopt.Y("7-VM")
	f.CheckRange("dom0 unoptimized at 1 VM ≈17%", one, 10, 26)
	f.CheckRange("dom0 unoptimized at 7 VMs ≈30%", seven, 22, 42)
	f.CheckTrue("dom0 grows with VM#", seven > one, fmt.Sprintf("1VM=%.1f 7VM=%.1f", one, seven))
	for _, p := range dom0Opt.Points {
		f.CheckRange("dom0 optimized ≈3% ("+p.X+")", p.Y, 0, 6)
	}
	for _, s := range []*report.Series{tputUnopt, tputOpt} {
		for _, p := range s.Points {
			f.CheckRange("throughput at line rate ("+s.Name+" "+p.X+")", p.Y, 930, 970)
		}
	}
	return f
}

// fig07Hops are the packet-path hops whose latency percentiles Fig. 7's
// companion series report: the end-to-end doorbell→interrupt delta (carries
// the EITR throttle wait) and the interrupt→drain delta (the ISR's share).
var fig07Hops = []string{obs.HopDoorbellToIntr, obs.HopIntrToDrain}

// hopQuantiles is one hop's latency summary in microseconds.
type hopQuantiles struct {
	p50, p95, p99 float64
}

// fig07Measure is one tracing run: the per-exit-reason breakdown, total
// cycles/second, and the VF queue's per-hop latency percentiles.
type fig07Measure struct {
	perReason map[vmm.ExitReason]vmm.ExitRecord
	total     float64
	hops      map[string]hopQuantiles
}

func quantMicros(h *obs.Hist, q float64) float64 {
	return float64(h.Quantile(q)) / float64(units.Microsecond)
}

// fig07Run traces all VM-exits of a single HVM guest at 1 GbE line rate.
func fig07Run(seed uint64, reg *obs.Registry, arena *sim.Arena, opts vmm.Optimizations) fig07Measure {
	tb := core.NewTestbed(core.Config{Seed: seed, Ports: 1, Opts: opts, Obs: reg, Arena: arena})
	g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.KernelRHEL5, 0, 0, dynamicPolicy())
	if err != nil {
		panic(err)
	}
	tb.StartUDP(g, model.LineRateUDP)
	tb.Eng.RunUntil(tb.Eng.Now().Add(warmup))
	tb.HV.ResetExitTrace()
	start := tb.Eng.Now()
	end := tb.Eng.RunUntil(start.Add(window))
	tb.StopAll()
	chaos.Record(reg, chaos.AuditTestbed(tb))
	// Add the timer tick's APIC traffic for the window (charged
	// analytically elsewhere; reflect it in the trace for parity).
	tb.HV.ChargeTimerBaseline(g.Dom, window)
	secs := end.Sub(start).Seconds()
	out := make(map[vmm.ExitReason]vmm.ExitRecord)
	var tot float64
	for r, rec := range tb.HV.Exits {
		out[r] = *rec
		tot += float64(rec.Cycles)
	}
	hops := make(map[string]hopQuantiles, len(fig07Hops))
	for _, hop := range fig07Hops {
		h := tb.Obs.FindHistogram("path.eth0/vf0." + hop)
		hops[hop] = hopQuantiles{
			p50: quantMicros(h, 0.50), p95: quantMicros(h, 0.95), p99: quantMicros(h, 0.99),
		}
	}
	return fig07Measure{perReason: out, total: tot / secs, hops: hops}
}

func fig07Points() []Point {
	return []Point{
		{Label: "unopt", Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
			return fig07Run(seed, reg, arena, vmm.Optimizations{MaskAccel: true})
		}},
		{Label: "eoi-accel", Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
			return fig07Run(seed, reg, arena, vmm.Optimizations{MaskAccel: true, EOIAccel: true})
		}},
	}
}

// buildFig07 assembles §5.2: the VM-exit breakdown before and after
// virtual-EOI acceleration.
func buildFig07(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig07",
		Title: "Virtualization overhead per second by VM-exit type",
		Description: "Hypervisor cycles per second spent in each VM-exit class for one " +
			"HVM guest at 1 GbE line rate, with and without the Exit-qualification EOI " +
			"fast path (§5.2).",
		PaperRef: []string{
			"APIC-access exits are ~90% of total virtualization overhead (139M of 154M cycles/s)",
			"EOI writes are 47% of APIC-access exits",
			"EOI acceleration removes 28% of total overhead (154M → 111M cycles/s)",
			"per-exit EOI emulation cost drops from 8.4K to 2.5K cycles",
		},
	}
	unoptM := results[0].(fig07Measure)
	optM := results[1].(fig07Measure)
	unopt, totalUnopt := unoptM.perReason, unoptM.total
	opt, totalOpt := optM.perReason, optM.total

	sBefore := f.AddSeries("cycles/s-unopt", "Mcycles")
	sAfter := f.AddSeries("cycles/s-eoi-accel", "Mcycles")
	for _, reason := range []vmm.ExitReason{vmm.ExitExtInt, vmm.ExitAPICEOI, vmm.ExitAPICOther, vmm.ExitMSIMask} {
		sBefore.Add(string(reason), float64(unopt[reason].Cycles)/1e6)
		sAfter.Add(string(reason), float64(opt[reason].Cycles)/1e6)
	}

	// Shape checks against the paper's decomposition.
	apic := float64(unopt[vmm.ExitAPICEOI].Cycles + unopt[vmm.ExitAPICOther].Cycles)
	// The paper reports ~90%; our model keeps a larger share in the
	// external-interrupt and (accelerated) mask exits, landing ~75%.
	f.CheckRange("APIC-access dominates overhead (paper ≈90%)", apic/totalUnopt*window.Seconds()*100, 70, 97)
	eoiShare := float64(unopt[vmm.ExitAPICEOI].Count) /
		float64(unopt[vmm.ExitAPICEOI].Count+unopt[vmm.ExitAPICOther].Count) * 100
	f.CheckRange("EOI share of APIC exits ≈47%", eoiShare, 35, 60)
	f.CheckRange("total overhead ≈154M cycles/s", totalUnopt/1e6, 100, 220)
	reduction := (totalUnopt - totalOpt) / totalUnopt * 100
	f.CheckRange("EOI acceleration removes ≈28%", reduction, 15, 40)
	perExitBefore := float64(unopt[vmm.ExitAPICEOI].Cycles) / float64(unopt[vmm.ExitAPICEOI].Count)
	perExitAfter := float64(opt[vmm.ExitAPICEOI].Cycles) / float64(opt[vmm.ExitAPICEOI].Count)
	f.CheckRange("per-exit EOI cost before = 8.4K", perExitBefore, 8300, 8500)
	f.CheckRange("per-exit EOI cost after = 2.5K", perExitAfter, 2400, 2600)

	tot := f.AddSeries("total", "Mcycles/s")
	tot.Add("unopt", totalUnopt/1e6)
	tot.Add("eoi-accel", totalOpt/1e6)

	// Per-hop packet-path latency percentiles for the VF queue — headline
	// metrics (each series' last point) that the bench comparator gates.
	for _, hop := range fig07Hops {
		add := f.AddLatencyPercentiles("lat-" + hop)
		for i, label := range []string{"unopt", "eoi-accel"} {
			q := results[i].(fig07Measure).hops[hop]
			add(label, q.p50, q.p95, q.p99)
		}
	}
	return f
}

func init() {
	// Fig. 7's single-guest line-rate run doubles as the `-trace-out`
	// workload: one VF, every control-plane event and packet hop visible.
	setObserve("fig07", func(tr *trace.Buffer, spans *obs.SpanBuffer) {
		seed := PointSeed("fig07", "observe")
		tb := core.NewTestbed(core.Config{Seed: seed, Ports: 1,
			Opts: vmm.Optimizations{MaskAccel: true, EOIAccel: true}})
		tb.SetTracer(tr)
		tb.SetSpans(spans)
		g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.KernelRHEL5, 0, 0, dynamicPolicy())
		if err != nil {
			panic(err)
		}
		tb.StartUDP(g, model.LineRateUDP)
		tb.Eng.RunUntil(tb.Eng.Now().Add(warmup + window))
		tb.StopAll()
	})
}

// fig12Rows is the optimization ladder of §6.2, plus the native baseline.
type fig12Row struct {
	label  string
	kernel vmm.KernelConfig
	typ    vmm.DomainType
	opts   vmm.Optimizations
	policy func() netstack.ITRPolicy
	warm   units.Duration
}

func fig12Rows() []fig12Row {
	return []fig12Row{
		{"2.6.18-unopt", vmm.KernelRHEL5, vmm.HVM, vmm.Optimizations{}, dynamicPolicy, warmup},
		{"2.6.18-msi", vmm.KernelRHEL5, vmm.HVM, vmm.Optimizations{MaskAccel: true}, dynamicPolicy, warmup},
		{"2.6.28-base", vmm.Kernel2628, vmm.HVM, vmm.Optimizations{MaskAccel: true}, dynamicPolicy, warmup},
		{"2.6.28-eoi", vmm.Kernel2628, vmm.HVM, vmm.Optimizations{MaskAccel: true, EOIAccel: true}, dynamicPolicy, warmup},
		{"2.6.28-eoi-aic", vmm.Kernel2628, vmm.HVM, vmm.Optimizations{MaskAccel: true, EOIAccel: true}, aicPolicy, aicWarm},
		{"native", vmm.Kernel2628, vmm.Native, vmm.Optimizations{}, dynamicPolicy, warmup},
	}
}

// fig12Measure is one ladder row's measurement.
type fig12Measure struct {
	total, dom0, xen, guests float64
	tput                     float64 // Gbps
}

func fig12Points() []Point {
	rows := fig12Rows()
	pts := make([]Point, 0, len(rows))
	for i, row := range rows {
		i, label := i, row.label
		pts = append(pts, Point{Label: label, Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
			row := fig12Rows()[i]
			r := runSRIOV(core.Config{Seed: seed, Ports: 10, Opts: row.opts, Obs: reg, Arena: arena}, 10,
				row.typ, row.kernel, row.policy, model.LineRateUDP, row.warm)
			return fig12Measure{total: r.util.Total, dom0: r.util.Dom0, xen: r.util.Xen,
				guests: r.util.Guests, tput: r.goodput.Gbps()}
		}})
	}
	return pts
}

// buildFig12 assembles §6.2: aggregate 10 GbE (10 VMs on 10 ports), CPU
// utilization under the optimization ladder for both kernels, plus the
// native baseline.
func buildFig12(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig12",
		Title: "Impact of the optimizations, aggregate 10 Gbps Ethernet (10 VMs)",
		Description: "Total server CPU (percent of one thread; 100% = one thread) for " +
			"the optimization ladder. 2.6.18 guests hammer MSI mask/unmask; 2.6.28 " +
			"guests do not, so their ladder starts at EOI acceleration.",
		PaperRef: []string{
			"2.6.18 HVM: MSI optimization reduces CPU from 499% to 227% (dom0 −208, guest −16, Xen −48)",
			"2.6.28 HVM: EOI acceleration −23%, AIC −24% more, landing at 193% @ 9.57 Gbps",
			"native baseline: all-optimized SR-IOV is only 48% above native",
		},
	}
	total := f.AddSeries("total-cpu", "%")
	dom0 := f.AddSeries("dom0", "%")
	xen := f.AddSeries("xen", "%")
	guests := f.AddSeries("guests", "%")
	tput := f.AddSeries("throughput", "Gbps")

	rows := fig12Rows()
	vals := map[string]fig12Measure{}
	for i, row := range rows {
		m := results[i].(fig12Measure)
		vals[row.label] = m
		total.Add(row.label, m.total)
		dom0.Add(row.label, m.dom0)
		xen.Add(row.label, m.xen)
		guests.Add(row.label, m.guests)
		tput.Add(row.label, m.tput)
	}

	// Shape checks.
	f.CheckRange("2.6.18 unoptimized total ≈499%", vals["2.6.18-unopt"].total, 380, 620)
	f.CheckRange("2.6.18 + MSI accel ≈227%", vals["2.6.18-msi"].total, 160, 300)
	msiSave := vals["2.6.18-unopt"].total - vals["2.6.18-msi"].total
	dom0Save := vals["2.6.18-unopt"].dom0 - vals["2.6.18-msi"].dom0
	f.CheckTrue("most MSI savings are dom0", dom0Save > 0.6*msiSave,
		fmt.Sprintf("dom0 −%.0f of −%.0f", dom0Save, msiSave))
	eoiSave := vals["2.6.28-base"].total - vals["2.6.28-eoi"].total
	aicSave := vals["2.6.28-eoi"].total - vals["2.6.28-eoi-aic"].total
	f.CheckRange("EOI acceleration saves ≈23 points", eoiSave, 8, 80)
	f.CheckRange("AIC saves ≈24 more points", aicSave, 8, 80)
	f.CheckRange("all-optimized total ≈193%", vals["2.6.28-eoi-aic"].total, 140, 240)
	native := vals["native"].total
	f.CheckTrue("all-opt within ~1.6× of native",
		vals["2.6.28-eoi-aic"].total < native*1.9,
		fmt.Sprintf("opt=%.0f native=%.0f", vals["2.6.28-eoi-aic"].total, native))
	// Iterate rows, not the map: check order must be deterministic so the
	// rendered report is byte-identical run to run.
	for _, row := range rows {
		f.CheckRange("line-rate throughput ("+row.label+")", vals[row.label].tput, 9.3, 9.7)
	}
	return f
}
