package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/units"
)

// fastFigures complete in well under a second each.
var fastFigures = []string{"extrr", "fig07", "fig08", "fig09", "fig10", "fig20", "fig21"}

// slowFigures build many testbeds or tens of guests.
var slowFigures = []string{"ext10g", "faults", "fig06", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28", "fig29", "fig30", "fig31"}

func runAndAssert(t *testing.T, id string) {
	t.Helper()
	s, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	f := s.Run()
	if f.ID != id {
		t.Fatalf("figure id = %s", f.ID)
	}
	if len(f.Series) == 0 {
		t.Fatal("no series")
	}
	if len(f.Checks) == 0 {
		t.Fatal("no shape checks")
	}
	for _, c := range f.FailedChecks() {
		t.Errorf("%s: %s — %s", id, c.Name, c.Detail)
	}
	// The markdown report must render the reference and the table.
	md := f.Markdown()
	for _, want := range []string{"Paper reports:", "Measured:", "Shape checks:"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestFastFigures(t *testing.T) {
	for _, id := range fastFigures {
		id := id
		t.Run(id, func(t *testing.T) { runAndAssert(t, id) })
	}
}

func TestSlowFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figures skipped in -short mode")
	}
	for _, id := range slowFigures {
		id := id
		t.Run(id, func(t *testing.T) { runAndAssert(t, id) })
	}
}

func TestRegistryAndHelpers(t *testing.T) {
	if len(All()) != len(fastFigures)+len(slowFigures) {
		t.Fatalf("registry size = %d", len(All()))
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id should miss")
	}
	// perPortRate splits the aggregate evenly.
	if got := perPortRate(10, 10); got.Mbps() != 957 {
		t.Fatalf("perPortRate(10,10) = %v", got)
	}
	if got := perPortRate(60, 10); got.Mbps() < 159 || got.Mbps() > 160 {
		t.Fatalf("perPortRate(60,10) = %v", got)
	}
	// Policies construct.
	if dynamicPolicy() == nil || aicPolicy() == nil {
		t.Fatal("policy constructors")
	}
}

func TestOutageWindowHelper(t *testing.T) {
	s := stats.NewSeries(100 * units.Millisecond)
	// Full rate everywhere except two outages: [0.5,0.8) and [1.2,1.4).
	full := 957e6 / 8 * 0.1 // bytes per full bucket
	for i := 0; i < 20; i++ {
		tm := units.Time(int64(i) * int64(100*units.Millisecond))
		v := full
		if i >= 5 && i < 8 || i >= 12 && i < 14 {
			v = 0
		}
		s.Add(tm, v)
	}
	start, end := outageWindow(s, 0)
	if start != 500*units.Millisecond || end != 800*units.Millisecond {
		t.Fatalf("first outage = [%v, %v]", start, end)
	}
	start, end = outageWindow(s, units.Second)
	if start != 1200*units.Millisecond || end != 1400*units.Millisecond {
		t.Fatalf("second outage = [%v, %v]", start, end)
	}
	// No outage after 1.5 s.
	start, end = outageWindow(s, 1500*units.Millisecond)
	if start != 0 || end != 0 {
		t.Fatalf("phantom outage = [%v, %v]", start, end)
	}
	// Goodput helper: full bucket ≈ 957 Mbps.
	if got := goodputMbpsAt(s, 100*units.Millisecond); got < 956 || got > 958 {
		t.Fatalf("goodputMbpsAt = %v", got)
	}
}

func TestSingleBucketDipIgnored(t *testing.T) {
	s := stats.NewSeries(100 * units.Millisecond)
	full := 1e7
	for i := 0; i < 10; i++ {
		v := full
		if i == 4 {
			v = 0 // one-bucket blip
		}
		s.Add(units.Time(int64(i)*int64(100*units.Millisecond)), v)
	}
	if start, end := outageWindow(s, 0); start != 0 || end != 0 {
		t.Fatalf("blip treated as outage: [%v, %v]", start, end)
	}
}
