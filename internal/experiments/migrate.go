package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/drivers"
	"repro/internal/migration"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vmm"
)

// This file reproduces the §6.7 migration timelines: Fig. 20 (an HVM guest
// on a PV NIC) and Fig. 21 (an HVM guest on SR-IOV with DNIS).

func init() {
	register(Spec{ID: "fig20", Title: "Migrating an HVM running netperf with a PV network driver", Run: Fig20})
	register(Spec{ID: "fig21", Title: "Migrating an HVM running netperf with SR-IOV and DNIS", Run: Fig21})
}

// timelineBucket is the goodput sampling interval of the timelines.
const timelineBucket = 100 * units.Millisecond

// timelineEnd is how long the timeline runs.
const timelineEnd = 16 * units.Second

// migrationRun holds one timeline's artifacts.
type migrationRun struct {
	series     *stats.Series // goodput bytes per bucket
	dom0Before float64
	result     *migration.Result
	bondBackVF bool
}

// runMigrationTimeline runs netperf against a guest on one 1 GbE port and
// migrates it at t = 4.5 s, recording a 100 ms-bucket goodput timeline.
func runMigrationTimeline(dnis bool) migrationRun {
	tb := core.NewTestbed(core.Config{
		Ports: 1, Opts: vmm.AllOptimizations,
		NetbackThreads: 2, GuestMemory: model.GuestMemory,
	})
	var g *core.Guest
	var err error
	if dnis {
		g, err = tb.AddBondedGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, netstack.DefaultAIC())
	} else {
		g, err = tb.AddPVGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0)
	}
	if err != nil {
		panic(err)
	}
	tb.StartUDP(g, model.LineRateUDP)

	run := migrationRun{series: stats.NewSeries(timelineBucket)}
	var lastBytes units.Size
	tick := sim.NewTicker(tb.Eng, timelineBucket, "timeline:sample", func(now units.Time) {
		cur := g.Recv.Stats.AppBytes
		run.series.Add(now-1, float64(cur-lastBytes)) // -1ns: land in the elapsed bucket
		lastBytes = cur
	})
	defer tick.Stop()

	// dom0 CPU over [1.0 s, 4.4 s), before migration begins.
	tb.Eng.RunUntil(units.Time(units.Second))
	tb.Meter.ResetWindow(tb.Eng.Now())
	tb.Eng.RunUntil(units.Time(4400 * units.Millisecond))
	preWindow := 3400 * units.Millisecond
	tb.HV.ChargeDom0Baseline(preWindow)
	run.dom0Before = tb.Meter.Utilization("dom0", tb.Eng.Now())

	// Launch the migration at 4.5 s.
	mgr := migration.NewManager(tb.HV, migration.DefaultConfig())
	tb.Eng.At(units.Time(model.MigrationStart), "experiment:migrate", func() {
		if dnis {
			err := mgr.MigrateDNIS(g.Dom, g.Bond, func() *drivers.VFDriver {
				// Hot add-on at the target: a fresh driver on another VF
				// ("the VF hardware in the target platform may or may not
				// be identical").
				vf, err := tb.ReattachVF(g, 0, 1, netstack.DefaultAIC())
				if err != nil {
					panic(err)
				}
				return vf
			}, func(r *migration.Result) { run.result = r })
			if err != nil {
				panic(err)
			}
		} else {
			if err := mgr.MigratePV(g.Dom, func(r *migration.Result) { run.result = r }); err != nil {
				panic(err)
			}
		}
	})
	tb.Eng.RunUntil(units.Time(timelineEnd))
	tb.StopAll()
	chaos.Record(tb.Obs, chaos.AuditTestbed(tb))
	if dnis && g.Bond != nil {
		run.bondBackVF = g.Bond.ActiveVF()
	}
	return run
}

// goodputMbpsAt reports the timeline's goodput in Mbps for the bucket
// containing t.
func goodputMbpsAt(s *stats.Series, t units.Duration) float64 {
	idx := int(int64(t) / int64(s.Width()))
	return s.Bucket(idx) * 8 / s.Width().Seconds() / 1e6
}

// fillTimeline renders a series at half-second resolution for the report.
func fillTimeline(f *report.Figure, s *stats.Series) {
	out := f.AddSeries("goodput", "Mbps")
	for t := units.Duration(0); t < timelineEnd; t += 500 * units.Millisecond {
		out.Add(fmt.Sprintf("%.1fs", t.Seconds()), goodputMbpsAt(s, t))
	}
}

// outageWindow finds the first run of at least two near-zero buckets at or
// after `from`, returning its start and end times.
func outageWindow(s *stats.Series, from units.Duration) (units.Duration, units.Duration) {
	width := s.Width()
	curStart := units.Duration(-1)
	for i := int(int64(from) / int64(width)); i < s.Len(); i++ {
		t := units.Duration(int64(i) * int64(width))
		zero := s.Bucket(i)*8/width.Seconds()/1e6 < 50 // <50 Mbps counts as down
		if zero && curStart < 0 {
			curStart = t
		}
		if !zero && curStart >= 0 {
			if t-curStart >= 2*width {
				return curStart, t
			}
			curStart = -1 // single-bucket dip: noise
		}
	}
	if curStart >= 0 {
		return curStart, timelineEnd
	}
	return 0, 0
}

// Fig20 is the PV-NIC migration baseline.
func Fig20() *report.Figure {
	f := &report.Figure{
		ID:    "fig20",
		Title: "Migration timeline: HVM guest with a PV network driver",
		Description: "netperf goodput sampled in 100 ms buckets; the migration starts " +
			"at t = 4.5 s; pre-copy keeps the service up until stop-and-copy.",
		PaperRef: []string{
			"service continues through pre-copy (dom0 busy copying packets throughout)",
			"service down from ≈10.4 s to ≈11.8 s (stop-and-copy)",
		},
	}
	run := runMigrationTimeline(false)
	fillTimeline(f, run.series)

	f.CheckTrue("migration completed", run.result != nil, "")
	if run.result == nil {
		return f
	}
	f.CheckRange("goodput before migration ≈957 Mbps", goodputMbpsAt(run.series, 3*units.Second), 900, 980)
	f.CheckTrue("dom0 busy before migration (PV copy)", run.dom0Before > 15,
		fmt.Sprintf("dom0=%.1f%%", run.dom0Before))
	downStart, downEnd := outageWindow(run.series, 5*units.Second)
	f.CheckRange("service-down start ≈10.4 s", downStart.Seconds(), 8.5, 12)
	f.CheckRange("downtime ≈1.4 s", (downEnd - downStart).Seconds(), 0.9, 2.2)
	f.CheckRange("goodput restored after migration", goodputMbpsAt(run.series, downEnd+units.Second), 900, 980)
	f.CheckRange("reported downtime matches timeline", run.result.Downtime().Seconds(), 0.9, 2.2)
	return f
}

// Fig21 is the SR-IOV + DNIS migration.
func Fig21() *report.Figure {
	f := &report.Figure{
		ID:    "fig21",
		Title: "Migration timeline: HVM guest with SR-IOV and DNIS",
		Description: "Before migration the guest runs on its VF (dom0 idle). At 4.5 s " +
			"the virtual hot-removal switches the bond to the PV NIC (≈0.6 s outage), " +
			"pre-copy proceeds on the PV NIC, and after stop-and-copy a VF is hot-added " +
			"back at the target.",
		PaperRef: []string{
			"SR-IOV eliminates dom0 CPU before migration; PV uses significant cycles",
			"an additional ≈0.6 s outage at the interface switch (t = 4.5 s)",
			"service down ≈10.3 s to ≈11.8 s, on par with the PV driver",
		},
	}
	run := runMigrationTimeline(true)
	fillTimeline(f, run.series)

	f.CheckTrue("migration completed", run.result != nil, "")
	if run.result == nil {
		return f
	}
	f.CheckRange("goodput before migration ≈957 Mbps", goodputMbpsAt(run.series, 3*units.Second), 900, 980)
	f.CheckTrue("dom0 idle before migration (SR-IOV)", run.dom0Before < 6,
		fmt.Sprintf("dom0=%.1f%%", run.dom0Before))
	// The DNIS switch outage right after 4.5 s.
	switchStart, switchEnd := outageWindow(run.series, 4400*units.Millisecond)
	f.CheckRange("switch outage begins ≈4.5 s", switchStart.Seconds(), 4.3, 5.0)
	f.CheckRange("switch outage ≈0.6 s", (switchEnd - switchStart).Seconds(), 0.4, 0.9)
	// Service resumes on the PV NIC during pre-copy.
	f.CheckRange("pre-copy service on PV NIC", goodputMbpsAt(run.series, 7*units.Second), 900, 980)
	// The real downtime later.
	downStart, downEnd := outageWindow(run.series, 8*units.Second)
	f.CheckRange("service-down start ≈10.3 s", downStart.Seconds(), 8.5, 12.5)
	f.CheckRange("downtime ≈1.5 s", (downEnd - downStart).Seconds(), 0.9, 2.2)
	f.CheckRange("goodput restored after migration", goodputMbpsAt(run.series, downEnd+units.Second), 900, 980)
	f.CheckTrue("bond back on a VF at the target", run.bondBackVF, "")
	f.CheckRange("switch outage recorded", run.result.SwitchOutage.Seconds(), 0.5, 0.7)
	return f
}
