package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vmm"
	"repro/internal/workload"
)

// This file reproduces the §5.3 interrupt-coalescing studies: Fig. 8
// (UDP_STREAM), Fig. 9 (TCP_STREAM) and Fig. 10 (inter-VM overflow
// avoidance). Each policy of the sweep is an independent Point so the
// parallel runner can shard the policy axis.

func init() {
	registerPoints("fig08", "Adaptive interrupt coalescing reduces CPU overhead for UDP_STREAM",
		coalescePointsFor(fig08Point), buildFig08)
	registerPoints("fig09", "Adaptive interrupt coalescing maintains throughput with minimal CPU for TCP_STREAM",
		coalescePointsFor(fig09Point), buildFig09)
	registerPoints("fig10", "Adaptive interrupt coalescing avoids packet loss in inter-VM communication",
		coalescePointsFor(fig10Point), buildFig10)
}

// coalescePolicies are the four policies of Figs. 8–10: the low-latency
// profile, the VF driver default, the paper's AIC, and the too-slow 1 kHz.
// Policies can be stateful (AIC adapts), so every point run asks for a
// fresh set and picks its own by index.
func coalescePolicies() []netstack.ITRPolicy {
	return []netstack.ITRPolicy{
		netstack.FixedITR(model.LowLatencyITRHz),
		netstack.FixedITR(model.DefaultITRHz),
		netstack.DefaultAIC(),
		netstack.FixedITR(1000),
	}
}

// coalescePointsFor builds one Point per coalescing policy, labelled by the
// policy name, running the given per-policy measurement.
func coalescePointsFor(run func(policyIdx int, seed uint64, reg *obs.Registry, arena *sim.Arena) any) []Point {
	var pts []Point
	for i, p := range coalescePolicies() {
		i := i
		pts = append(pts, Point{Label: p.String(), Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
			return run(i, seed, reg, arena)
		}})
	}
	return pts
}

// coalesceMeasure is one policy's measurement, shared by the three figures
// (unused fields stay zero).
type coalesceMeasure struct {
	cpu    float64 // guest+xen
	dom0   float64
	tput   float64 // Mbps (fig08/09) or RX Gbps (fig10)
	intrHz float64
}

func fig08Point(policyIdx int, seed uint64, reg *obs.Registry, arena *sim.Arena) any {
	p := coalescePolicies()[policyIdx]
	r := runSRIOV(core.Config{Seed: seed, Ports: 1, Opts: vmm.AllOptimizations, Obs: reg, Arena: arena}, 1, vmm.HVM, vmm.Kernel2628,
		func() netstack.ITRPolicy { return p }, model.LineRateUDP, aicWarm)
	m := coalesceMeasure{cpu: r.util.Guests + r.util.Xen, dom0: r.util.Dom0, tput: r.goodput.Mbps()}
	// Recover the interrupt rate from the guest's receiver.
	for _, g := range r.bed.Guests() {
		m.intrHz = float64(g.Recv.Stats.Interrupts) / r.bed.Eng.Now().Seconds()
	}
	return m
}

// buildFig08 assembles the UDP_STREAM policy sweep for a single HVM guest
// receiving at 1 GbE line rate.
func buildFig08(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig08",
		Title: "UDP_STREAM CPU utilization and bandwidth vs interrupt coalescing policy",
		Description: "One HVM 2.6.28 guest with a VF at 1 GbE line rate; x-axis is the " +
			"coalescing policy (20 kHz low-latency, 2 kHz VF default, AIC, 1 kHz).",
		PaperRef: []string{
			"throughput stays at 957 Mbps for 20 kHz, 2 kHz and AIC",
			"~40% CPU saving from 20 kHz to 2 kHz; AIC reduces further",
			"dom0 stays ≈1.5% throughout",
		},
	}
	cpuS := f.AddSeries("guest+xen-cpu", "%")
	tputS := f.AddSeries("throughput", "Mbps")
	dom0S := f.AddSeries("dom0", "%")
	ifS := f.AddSeries("interrupt-rate", "Hz")

	for i, pol := range coalescePolicies() {
		m := results[i].(coalesceMeasure)
		label := pol.String()
		cpuS.Add(label, m.cpu)
		tputS.Add(label, m.tput)
		dom0S.Add(label, m.dom0)
		ifS.Add(label, m.intrHz)
	}

	for _, label := range []string{"20kHz", "2kHz", "AIC"} {
		y, _ := tputS.Y(label)
		f.CheckRange("throughput at line rate ("+label+")", y, 945, 965)
	}
	c20, _ := cpuS.Y("20kHz")
	c2, _ := cpuS.Y("2kHz")
	cAIC, _ := cpuS.Y("AIC")
	f.CheckRange("20k→2k CPU saving ≈40%", (c20-c2)/c20*100, 20, 55)
	f.CheckTrue("AIC cheapest among lossless policies", cAIC < c2 && c2 < c20,
		fmt.Sprintf("20k=%.1f 2k=%.1f aic=%.1f", c20, c2, cAIC))
	for _, p := range dom0S.Points {
		f.CheckRange("dom0 near baseline ("+p.X+")", p.Y, 0, 5)
	}
	return f
}

func fig09Point(policyIdx int, seed uint64, reg *obs.Registry, arena *sim.Arena) any {
	p := coalescePolicies()[policyIdx]
	tb := core.NewTestbed(core.Config{Seed: seed, Ports: 1, Opts: vmm.AllOptimizations, Obs: reg, Arena: arena})
	g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, p)
	if err != nil {
		panic(err)
	}
	tb.StartTCP(g, p)
	u, res := tb.Measure(aicWarm, window)
	tb.StopAll()
	chaos.Record(reg, chaos.AuditTestbed(tb))
	return coalesceMeasure{cpu: u.Guests + u.Xen, tput: res[g].Goodput.Mbps()}
}

// buildFig09 assembles the TCP_STREAM counterpart: the 1 kHz policy hurts
// throughput.
func buildFig09(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig09",
		Title: "TCP_STREAM throughput and CPU vs interrupt coalescing policy",
		Description: "One HVM 2.6.28 guest; the TCP source runs at the steady-state " +
			"equilibrium for each policy (window/RTT and receive-buffer overflow " +
			"limited).",
		PaperRef: []string{
			"throughput holds 940 Mbps for 20 kHz, 2 kHz and AIC",
			"a 9.6% throughput drop at fixed 1 kHz — TCP is latency sensitive",
			"~50% CPU saving from 20 kHz to 2 kHz",
		},
	}
	cpuS := f.AddSeries("guest+xen-cpu", "%")
	tputS := f.AddSeries("throughput", "Mbps")

	for i, pol := range coalescePolicies() {
		m := results[i].(coalesceMeasure)
		cpuS.Add(pol.String(), m.cpu)
		tputS.Add(pol.String(), m.tput)
	}

	for _, label := range []string{"20kHz", "2kHz", "AIC"} {
		y, _ := tputS.Y(label)
		f.CheckRange("TCP at 940 Mbps ("+label+")", y, 925, 950)
	}
	t1k, _ := tputS.Y("1kHz")
	drop := (940 - t1k) / 940 * 100
	f.CheckRange("1 kHz TCP drop ≈9.6%", drop, 5, 15)
	c20, _ := cpuS.Y("20kHz")
	c2, _ := cpuS.Y("2kHz")
	f.CheckRange("20k→2k CPU saving ≈50%", (c20-c2)/c20*100, 20, 60)
	return f
}

// fig10Offered is the inter-VM offered load: dom0 pushes through the NIC's
// internal switch faster than the wire rate (§6.3).
const fig10Offered = 2750 * units.Mbps

func fig10Point(policyIdx int, seed uint64, reg *obs.Registry, arena *sim.Arena) any {
	p := coalescePolicies()[policyIdx]
	tb := core.NewTestbed(core.Config{Seed: seed, Ports: 1, Opts: vmm.AllOptimizations, Obs: reg, Arena: arena})
	g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, p)
	if err != nil {
		panic(err)
	}
	// dom0's sender: periodic batches through the internal switch.
	pfq := tb.Ports[0].PFQueue()
	src := workload.NewSource(tb.Eng, fig10Offered, model.FrameSize, func(n int, b units.Size) {
		tb.HV.ChargeDom0("send", units.Cycles(n)*2500)
		tb.Ports[0].SendInternal(pfq, nic.Batch{Dst: g.MAC, Count: n, Bytes: b})
	})
	src.Start()
	u, res := tb.Measure(aicWarm, window)
	src.Stop()
	tb.StopAll()
	chaos.Record(reg, chaos.AuditTestbed(tb))
	return coalesceMeasure{cpu: u.Guests + u.Xen, tput: res[g].Goodput.Gbps()}
}

// buildFig10 assembles the inter-VM overflow study: fixed low interrupt
// rates overflow the receive buffers while AIC adapts.
func buildFig10(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig10",
		Title: "Inter-VM communication: TX vs RX bandwidth per coalescing policy",
		Description: "dom0 sends to a guest VF through the NIC-internal L2 switch at " +
			"~2.75 Gbps (above the wire rate, §6.3); packets beyond the per-interrupt " +
			"socket burst are lost at fixed low interrupt rates.",
		PaperRef: []string{
			"TX bandwidth stays flat; RX < TX at 2 kHz and 1 kHz (receive-buffer overflow)",
			"AIC raises the interrupt rate with throughput and avoids the loss",
			"20 kHz avoids loss too but at excessive CPU",
		},
	}
	txS := f.AddSeries("tx-bw", "Gbps")
	rxS := f.AddSeries("rx-bw", "Gbps")
	cpuS := f.AddSeries("guest+xen-cpu", "%")

	for i, pol := range coalescePolicies() {
		m := results[i].(coalesceMeasure)
		label := pol.String()
		txS.Add(label, fig10Offered.Gbps())
		rxS.Add(label, m.tput)
		cpuS.Add(label, m.cpu)
	}

	rxAIC, _ := rxS.Y("AIC")
	rx20, _ := rxS.Y("20kHz")
	rx2, _ := rxS.Y("2kHz")
	rx1, _ := rxS.Y("1kHz")
	f.CheckRange("AIC avoids loss (RX≈TX)", rxAIC, 2.6, 2.8)
	f.CheckRange("20 kHz avoids loss (RX≈TX)", rx20, 2.6, 2.8)
	f.CheckTrue("2 kHz loses packets (RX<TX)", rx2 < 0.9*fig10Offered.Gbps(), fmt.Sprintf("rx=%.2f", rx2))
	f.CheckTrue("1 kHz loses more", rx1 < rx2, fmt.Sprintf("1k=%.2f 2k=%.2f", rx1, rx2))
	c20, _ := cpuS.Y("20kHz")
	cAIC, _ := cpuS.Y("AIC")
	f.CheckTrue("AIC cheaper than 20 kHz", cAIC < c20, fmt.Sprintf("aic=%.1f 20k=%.1f", cAIC, c20))
	return f
}
