package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/vmm"
	"repro/internal/workload"
)

// This file reproduces the §5.3 interrupt-coalescing studies: Fig. 8
// (UDP_STREAM), Fig. 9 (TCP_STREAM) and Fig. 10 (inter-VM overflow
// avoidance).

func init() {
	register(Spec{ID: "fig08", Title: "Adaptive interrupt coalescing reduces CPU overhead for UDP_STREAM", Run: Fig08})
	register(Spec{ID: "fig09", Title: "Adaptive interrupt coalescing maintains throughput with minimal CPU for TCP_STREAM", Run: Fig09})
	register(Spec{ID: "fig10", Title: "Adaptive interrupt coalescing avoids packet loss in inter-VM communication", Run: Fig10})
}

// coalescePolicies are the four policies of Figs. 8–10: the low-latency
// profile, the VF driver default, the paper's AIC, and the too-slow 1 kHz.
func coalescePolicies() []netstack.ITRPolicy {
	return []netstack.ITRPolicy{
		netstack.FixedITR(model.LowLatencyITRHz),
		netstack.FixedITR(model.DefaultITRHz),
		netstack.DefaultAIC(),
		netstack.FixedITR(1000),
	}
}

// Fig08 sweeps the coalescing policy for a single HVM guest receiving
// UDP_STREAM at 1 GbE line rate.
func Fig08() *report.Figure {
	f := &report.Figure{
		ID:    "fig08",
		Title: "UDP_STREAM CPU utilization and bandwidth vs interrupt coalescing policy",
		Description: "One HVM 2.6.28 guest with a VF at 1 GbE line rate; x-axis is the " +
			"coalescing policy (20 kHz low-latency, 2 kHz VF default, AIC, 1 kHz).",
		PaperRef: []string{
			"throughput stays at 957 Mbps for 20 kHz, 2 kHz and AIC",
			"~40% CPU saving from 20 kHz to 2 kHz; AIC reduces further",
			"dom0 stays ≈1.5% throughout",
		},
	}
	cpuS := f.AddSeries("guest+xen-cpu", "%")
	tputS := f.AddSeries("throughput", "Mbps")
	dom0S := f.AddSeries("dom0", "%")
	ifS := f.AddSeries("interrupt-rate", "Hz")

	for _, pol := range coalescePolicies() {
		p := pol
		r := runSRIOV(core.Config{Ports: 1, Opts: vmm.AllOptimizations}, 1, vmm.HVM, vmm.Kernel2628,
			func() netstack.ITRPolicy { return p }, model.LineRateUDP, aicWarm)
		label := p.String()
		cpuS.Add(label, r.util.Guests+r.util.Xen)
		tputS.Add(label, r.goodput.Mbps())
		dom0S.Add(label, r.util.Dom0)
		// Recover the interrupt rate from the guest's receiver.
		for _, g := range r.bed.Guests() {
			ifS.Add(label, float64(g.Recv.Stats.Interrupts)/r.bed.Eng.Now().Seconds())
		}
	}

	for _, label := range []string{"20kHz", "2kHz", "AIC"} {
		y, _ := tputS.Y(label)
		f.CheckRange("throughput at line rate ("+label+")", y, 945, 965)
	}
	c20, _ := cpuS.Y("20kHz")
	c2, _ := cpuS.Y("2kHz")
	cAIC, _ := cpuS.Y("AIC")
	f.CheckRange("20k→2k CPU saving ≈40%", (c20-c2)/c20*100, 20, 55)
	f.CheckTrue("AIC cheapest among lossless policies", cAIC < c2 && c2 < c20,
		fmt.Sprintf("20k=%.1f 2k=%.1f aic=%.1f", c20, c2, cAIC))
	for _, p := range dom0S.Points {
		f.CheckRange("dom0 near baseline ("+p.X+")", p.Y, 0, 5)
	}
	return f
}

// Fig09 is the TCP_STREAM counterpart: the 1 kHz policy hurts throughput.
func Fig09() *report.Figure {
	f := &report.Figure{
		ID:    "fig09",
		Title: "TCP_STREAM throughput and CPU vs interrupt coalescing policy",
		Description: "One HVM 2.6.28 guest; the TCP source runs at the steady-state " +
			"equilibrium for each policy (window/RTT and receive-buffer overflow " +
			"limited).",
		PaperRef: []string{
			"throughput holds 940 Mbps for 20 kHz, 2 kHz and AIC",
			"a 9.6% throughput drop at fixed 1 kHz — TCP is latency sensitive",
			"~50% CPU saving from 20 kHz to 2 kHz",
		},
	}
	cpuS := f.AddSeries("guest+xen-cpu", "%")
	tputS := f.AddSeries("throughput", "Mbps")

	for _, pol := range coalescePolicies() {
		p := pol
		tb := core.NewTestbed(core.Config{Ports: 1, Opts: vmm.AllOptimizations})
		g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, p)
		if err != nil {
			panic(err)
		}
		tb.StartTCP(g, p)
		u, res := tb.Measure(aicWarm, window)
		tb.StopAll()
		label := p.String()
		cpuS.Add(label, u.Guests+u.Xen)
		tputS.Add(label, res[g].Goodput.Mbps())
	}

	for _, label := range []string{"20kHz", "2kHz", "AIC"} {
		y, _ := tputS.Y(label)
		f.CheckRange("TCP at 940 Mbps ("+label+")", y, 925, 950)
	}
	t1k, _ := tputS.Y("1kHz")
	drop := (940 - t1k) / 940 * 100
	f.CheckRange("1 kHz TCP drop ≈9.6%", drop, 5, 15)
	c20, _ := cpuS.Y("20kHz")
	c2, _ := cpuS.Y("2kHz")
	f.CheckRange("20k→2k CPU saving ≈50%", (c20-c2)/c20*100, 20, 60)
	return f
}

// Fig10 reproduces the inter-VM overflow study: dom0 pushes packets to a
// guest through the NIC's internal switch faster than the line rate; fixed
// low interrupt rates overflow the receive buffers while AIC adapts.
func Fig10() *report.Figure {
	f := &report.Figure{
		ID:    "fig10",
		Title: "Inter-VM communication: TX vs RX bandwidth per coalescing policy",
		Description: "dom0 sends to a guest VF through the NIC-internal L2 switch at " +
			"~2.75 Gbps (above the wire rate, §6.3); packets beyond the per-interrupt " +
			"socket burst are lost at fixed low interrupt rates.",
		PaperRef: []string{
			"TX bandwidth stays flat; RX < TX at 2 kHz and 1 kHz (receive-buffer overflow)",
			"AIC raises the interrupt rate with throughput and avoids the loss",
			"20 kHz avoids loss too but at excessive CPU",
		},
	}
	txS := f.AddSeries("tx-bw", "Gbps")
	rxS := f.AddSeries("rx-bw", "Gbps")
	cpuS := f.AddSeries("guest+xen-cpu", "%")

	const offered = 2750 * units.Mbps
	for _, pol := range coalescePolicies() {
		p := pol
		tb := core.NewTestbed(core.Config{Ports: 1, Opts: vmm.AllOptimizations})
		g, err := tb.AddSRIOVGuest("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, p)
		if err != nil {
			panic(err)
		}
		// dom0's sender: periodic batches through the internal switch.
		pfq := tb.Ports[0].PFQueue()
		src := workload.NewSource(tb.Eng, offered, model.FrameSize, func(n int, b units.Size) {
			tb.HV.ChargeDom0("send", units.Cycles(n)*2500)
			tb.Ports[0].SendInternal(pfq, nic.Batch{Dst: g.MAC, Count: n, Bytes: b})
		})
		src.Start()
		u, res := tb.Measure(aicWarm, window)
		src.Stop()
		label := p.String()
		txS.Add(label, offered.Gbps())
		rxS.Add(label, res[g].Goodput.Gbps())
		cpuS.Add(label, u.Guests+u.Xen)
	}

	rxAIC, _ := rxS.Y("AIC")
	rx20, _ := rxS.Y("20kHz")
	rx2, _ := rxS.Y("2kHz")
	rx1, _ := rxS.Y("1kHz")
	f.CheckRange("AIC avoids loss (RX≈TX)", rxAIC, 2.6, 2.8)
	f.CheckRange("20 kHz avoids loss (RX≈TX)", rx20, 2.6, 2.8)
	f.CheckTrue("2 kHz loses packets (RX<TX)", rx2 < 0.9*offered.Gbps(), fmt.Sprintf("rx=%.2f", rx2))
	f.CheckTrue("1 kHz loses more", rx1 < rx2, fmt.Sprintf("1k=%.2f 2k=%.2f", rx1, rx2))
	c20, _ := cpuS.Y("20kHz")
	cAIC, _ := cpuS.Y("AIC")
	f.CheckTrue("AIC cheaper than 20 kHz", cAIC < c20, fmt.Sprintf("aic=%.1f 20k=%.1f", cAIC, c20))
	return f
}
