package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vmm"
)

// This file adds the chaos figures: Fig. 24 measures recovery latency per
// fault kind under spaced, fully-recovering episodes (the recovery-SLO
// counterpart of the faults figure's single-shot runs), and Fig. 25 sweeps
// a randomized fault storm's arrival rate across the fig22 cluster
// topology, reporting how goodput and availability degrade. Both run the
// system-wide invariant audit and fail their figure if anything leaks.

func init() {
	registerPoints("fig24", "Recovery latency by fault kind: MTTR quantiles and availability",
		recoveryPoints(), buildRecovery)
	registerPoints("fig25", "Goodput and availability vs fault arrival rate on the cluster",
		stormPoints(), buildStorm)
}

const (
	fig24Episodes = 4
	fig24Spacing  = 2500 * units.Millisecond
	fig24Horizon  = 12 * units.Second

	fig25Hosts = 2
	fig25VMs   = 2
	stormStart = 500 * units.Millisecond
	stormEnd   = 6 * units.Second
	stormTail  = 1500 * units.Millisecond // recovery room after the last injection
)

var stormRates = []float64{0, 0.5, 2, 8} // faults per second per host

// recoveryCell is one fault kind's measured recovery service level.
type recoveryCell struct {
	kind          string
	p50, p95, p99 units.Duration
	rep           chaos.Report
	violations    int64
}

func recoveryPoints() []Point {
	cases := []struct {
		name string
		kind fault.Kind
	}{
		{"link-flap", fault.LinkFlap},
		{"mbox-drop", fault.MailboxDrop},
		{"queue-stall", fault.QueueStall},
		{"device-reset", fault.DeviceReset},
		{"vf-remove", fault.SurpriseRemoveVF},
	}
	var pts []Point
	for _, c := range cases {
		c := c
		pts = append(pts, Point{
			Label: c.name,
			Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
				return runRecovery(seed, reg, arena, c.name, c.kind)
			},
		})
	}
	return pts
}

// runRecovery drives fig24Episodes spaced injections of one kind against a
// bonded guest (VF on port 0, PV standby on port 1, miimon monitoring) at
// line rate, with every episode fully recovering before the next, and
// reads the MTTR histogram the SLO tracker fills.
func runRecovery(seed uint64, reg *obs.Registry, arena *sim.Arena, name string, kind fault.Kind) recoveryCell {
	tb := core.NewTestbed(core.Config{
		Seed: seed, Ports: 2, Opts: vmm.AllOptimizations, NetbackThreads: 2,
		Obs: reg, Arena: arena,
	})
	g, err := tb.AddBondedGuestOn("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, 1, netstack.DefaultAIC())
	if err != nil {
		panic(err)
	}
	g.Bond.StartMonitor(0)
	tb.StartUDP(g, model.LineRateUDP)

	inj := fault.NewInjector(tb.Eng, nil)
	inj.Watch(tb.Ports[0], tb.PFs[0])
	inj.Watch(tb.Ports[1], tb.PFs[1])
	plan := chaos.Spaced(tb.Eng, chaos.Config{
		Name:  "fig24:" + name,
		Start: units.Time(units.Second),
	}, kind, fig24Episodes, fig24Spacing)
	if err := chaos.Arm(inj, plan); err != nil {
		panic(err)
	}
	// Mailbox faults only bite when there is mailbox traffic: issue a VLAN
	// join just inside each drop window so the request rides the retry path.
	if kind == fault.MailboxDrop {
		for i, s := range plan {
			vlan := uint16(100 + i)
			tb.Eng.At(s.At.Add(100*units.Microsecond), "fig24:vlan-join", func() {
				if err := g.VF.JoinVLAN(vlan); err != nil {
					panic(err)
				}
			})
		}
	}

	nominal := model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(tb.Eng, reg, nominal, func() int64 { return g.Recv.Stats.AppPackets })
	slo.Attach(inj)

	tb.Eng.RunUntil(units.Time(fig24Horizon))
	rep := slo.Finish()
	tb.StopAll()
	chaos.Record(reg, chaos.AuditTestbed(tb))

	cell := recoveryCell{kind: name, rep: rep,
		violations: reg.Counter("chaos.invariant_violations").Value()}
	if h := slo.MTTR(kind); h != nil {
		cell.p50, cell.p95, cell.p99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	}
	return cell
}

func buildRecovery(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig24",
		Title: "Recovery latency by fault kind: MTTR quantiles and availability",
		Description: "A bonded guest (VF on port 0, PV standby on port 1, miimon 100 ms) " +
			"receives line-rate UDP while spaced fault episodes of one kind land on the VF " +
			"path; an SLO probe marks 10 ms buckets healthy or not. MTTR is injection → " +
			"first healthy bucket; the system-wide invariant audit runs after every cell.",
		PaperRef: []string{
			"planned DNIS switch outage is 0.6 s (§6.7); unplanned recovery stays in that order",
			"PF→VF mailbox carries reset/link events (§4.2); control-plane faults leave the datapath alone",
		},
	}
	p50 := f.AddSeries("mttr_p50", "ms")
	p95 := f.AddSeries("mttr_p95", "ms")
	p99 := f.AddSeries("mttr_p99", "ms")
	avail := f.AddSeries("availability", "")
	for _, r := range results {
		c := r.(recoveryCell)
		p50.Add(c.kind, c.p50.Seconds()*1e3)
		p95.Add(c.kind, c.p95.Seconds()*1e3)
		p99.Add(c.kind, c.p99.Seconds()*1e3)
		avail.Add(c.kind, c.rep.Availability)

		f.CheckTrue(c.kind+": every episode recovered",
			c.rep.Recoveries == fig24Episodes && c.rep.Unrecovered == 0,
			fmt.Sprintf("recoveries=%d unrecovered=%d", c.rep.Recoveries, c.rep.Unrecovered))
		f.CheckTrue(c.kind+": zero invariant violations", c.violations == 0,
			fmt.Sprintf("violations=%d", c.violations))
		f.CheckTrue(c.kind+": p99 recovery under 2.5 s", c.p99 < 2500*units.Millisecond,
			fmt.Sprintf("p99=%v", c.p99))
		f.CheckTrue(c.kind+": quantiles ordered", c.p50 <= c.p95 && c.p95 <= c.p99,
			fmt.Sprintf("p50=%v p95=%v p99=%v", c.p50, c.p95, c.p99))
	}
	return f
}

// stormCell is one storm-rate sweep point on the cluster.
type stormCell struct {
	rate         float64
	goodputFrac  float64 // aggregate goodput / (hosts × line rate)
	availability float64
	planned      int
	rep          chaos.Report
	violations   int64
}

func stormPoints() []Point {
	var pts []Point
	for _, rate := range stormRates {
		rate := rate
		pts = append(pts, Point{
			Label: fmt.Sprintf("rate=%g", rate),
			Run: func(seed uint64, reg *obs.Registry, arena *sim.Arena) any {
				return runStorm(seed, reg, arena, rate)
			},
		})
	}
	return pts
}

// runStorm reruns the fig22 ring-of-flows pattern (2 hosts × 2 VMs behind
// the ToR) with bonded, monitored guests, and arms an independent
// randomized fault campaign per host at the given arrival rate. Goodput
// and availability are measured across the storm window; the cluster-wide
// invariant audit runs after recovery.
func runStorm(seed uint64, reg *obs.Registry, arena *sim.Arena, rate float64) stormCell {
	c := cluster.New(cluster.Config{
		Hosts: fig25Hosts, Seed: seed, Obs: reg, Arena: arena,
		Host: core.Config{Opts: vmm.AllOptimizations, NetbackThreads: 2},
	})
	guests := make([][]*core.Guest, fig25Hosts)
	for i := 0; i < fig25Hosts; i++ {
		for j := 0; j < fig25VMs; j++ {
			g, err := c.Host(i).Bed.AddBondedGuest(fmt.Sprintf("h%d-vm%d", i, j),
				vmm.HVM, vmm.Kernel2628, 0, j, netstack.FixedITR(2000))
			if err != nil {
				panic(err)
			}
			g.Bond.StartMonitor(0)
			c.Host(i).Connect(g)
			guests[i] = append(guests[i], g)
		}
	}
	perVM := model.LineRateUDP / units.BitRate(fig25VMs)
	for i := 0; i < fig25Hosts; i++ {
		next := (i + 1) % fig25Hosts
		for j := 0; j < fig25VMs; j++ {
			if _, err := c.StartFlow(c.Host(i), guests[i][j], c.Host(next), guests[next][j], perVM); err != nil {
				panic(err)
			}
		}
	}

	// Aggregate probe: total application packets delivered cluster-wide.
	// Losing one host's worth must read as an outage, hence the 0.75 bar.
	nominal := float64(fig25Hosts) * model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(c.Eng, reg, nominal, func() int64 {
		var total int64
		for _, hg := range guests {
			for _, g := range hg {
				total += g.Recv.Stats.AppPackets
			}
		}
		return total
	})
	slo.SetHealthyFraction(0.75)

	cell := stormCell{rate: rate}
	for i := 0; i < fig25Hosts; i++ {
		h := c.Host(i)
		inj := fault.NewInjector(c.Eng, nil)
		inj.Watch(h.Bed.Ports[0], h.Bed.PFs[0])
		plan := chaos.Plan(c.Eng, chaos.Config{
			Name:  fmt.Sprintf("fig25:h%d", i),
			Start: units.Time(stormStart), End: units.Time(stormEnd),
			Ports: 1, VFsPerPort: fig25VMs,
			StormRate:   rate,
			CascadeProb: 0.25, CascadeDelay: 50 * units.Millisecond,
		})
		if err := chaos.Arm(inj, plan); err != nil {
			panic(err)
		}
		slo.Attach(inj)
		cell.planned += len(plan)
	}

	ms := c.Measure(units.Duration(stormStart), units.Duration(stormEnd)-units.Duration(stormStart))
	c.Eng.RunUntil(units.Time(stormEnd).Add(stormTail))
	cell.rep = slo.Finish()
	c.StopAll()
	chaos.Record(reg, chaos.AuditCluster(c, nil))

	var goodput units.BitRate
	for _, m := range ms {
		goodput += core.AggregateGoodput(m.Results)
	}
	cell.goodputFrac = float64(goodput) / (float64(fig25Hosts) * float64(model.LineRateUDP))
	cell.availability = cell.rep.Availability
	cell.violations = reg.Counter("chaos.invariant_violations").Value()
	return cell
}

func buildStorm(results []any) *report.Figure {
	f := &report.Figure{
		ID:    "fig25",
		Title: "Goodput and availability vs fault arrival rate on the cluster",
		Description: "The fig22 ring of cross-host flows (2 hosts × 2 bonded VMs behind the " +
			"ToR) under an independent randomized fault storm per host: Poisson arrivals of " +
			"every fault kind with recovery cascades. Goodput fraction over the storm window " +
			"and 10 ms-bucket availability per arrival rate; the invariant audit runs after " +
			"the recovery tail.",
		PaperRef: []string{
			"SR-IOV's per-host results compose across the fabric — and so does recovery",
			"availability degrades smoothly with fault pressure; conservation never breaks",
		},
	}
	goodput := f.AddSeries("goodput_fraction", "")
	avail := f.AddSeries("availability", "")
	planned := f.AddSeries("faults_planned", "")
	byRate := map[float64]stormCell{}
	var totalViolations int64
	for _, r := range results {
		c := r.(stormCell)
		label := fmt.Sprintf("rate=%g", c.rate)
		goodput.Add(label, c.goodputFrac)
		avail.Add(label, c.availability)
		planned.Add(label, float64(c.planned))
		byRate[c.rate] = c
		totalViolations += c.violations
		if c.rate == 0 {
			f.CheckTrue("fault-free cluster fully available", c.availability > 0.99,
				fmt.Sprintf("availability=%.3f", c.availability))
			f.CheckTrue("fault-free goodput near line rate", c.goodputFrac > 0.85,
				fmt.Sprintf("fraction=%.3f", c.goodputFrac))
			f.CheckTrue("zero-rate storm plans nothing", c.planned == 0,
				fmt.Sprintf("planned=%d", c.planned))
		} else {
			f.CheckTrue(label+" storm planned faults", c.planned > 0, "")
		}
	}
	if lo, hi := byRate[stormRates[0]], byRate[stormRates[len(stormRates)-1]]; hi.rate > lo.rate {
		f.CheckTrue("availability degrades under the heaviest storm", hi.availability < lo.availability,
			fmt.Sprintf("rate=%g: %.3f vs rate=%g: %.3f", lo.rate, lo.availability, hi.rate, hi.availability))
	}
	f.CheckTrue("zero invariant violations across the sweep", totalViolations == 0,
		fmt.Sprintf("violations=%d", totalViolations))
	return f
}

// SoakResult is one chaos-soak iteration's summary — the backing for
// `sriovsim -soak N`.
type SoakResult struct {
	Seed         uint64
	Planned      int
	Injected     int64
	Recoveries   int64
	Unrecovered  int64
	Availability float64
	Violations   []chaos.Violation
}

// ChaosSoak runs one randomized chaos iteration: a dense storm of every
// fault kind with recovery cascades on a bonded two-port testbed, plus the
// correlated FLR-during-mailbox-retry preset, then the full invariant
// audit. Deterministic per seed.
func ChaosSoak(seed uint64) SoakResult {
	reg := obs.NewRegistry()
	tb := core.NewTestbed(core.Config{
		Seed: seed, Ports: 2, Opts: vmm.AllOptimizations, NetbackThreads: 2, Obs: reg,
	})
	g, err := tb.AddBondedGuestOn("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, 1, netstack.DefaultAIC())
	if err != nil {
		panic(err)
	}
	g.Bond.StartMonitor(0)
	tb.StartUDP(g, model.LineRateUDP)

	inj := fault.NewInjector(tb.Eng, nil)
	inj.Watch(tb.Ports[0], tb.PFs[0])
	inj.Watch(tb.Ports[1], tb.PFs[1])
	plan := chaos.Plan(tb.Eng, chaos.Config{
		Name:  "soak",
		Start: units.Time(units.Second), End: units.Time(5 * units.Second),
		Ports: 2, VFsPerPort: 4,
		StormRate:   2,
		CascadeProb: 0.3, CascadeDelay: 50 * units.Millisecond,
	})
	retryAt := units.Time(1500 * units.Millisecond)
	plan = append(plan, chaos.FLRDuringMailboxRetry(retryAt, 0)...)
	if err := chaos.Arm(inj, plan); err != nil {
		panic(err)
	}
	tb.Eng.At(retryAt.Add(100*units.Microsecond), "soak:vlan-join", func() {
		// The join may race a storm-injected reset; retries or the FLR abort
		// handle it either way, so the error is immaterial to the soak.
		_ = g.VF.JoinVLAN(100)
	})

	nominal := model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(tb.Eng, reg, nominal, func() int64 { return g.Recv.Stats.AppPackets })
	slo.Attach(inj)

	tb.Eng.RunUntil(units.Time(6500 * units.Millisecond))
	rep := slo.Finish()
	tb.StopAll()
	vs := chaos.AuditTestbed(tb)
	chaos.Record(reg, vs)

	return SoakResult{
		Seed: seed, Planned: len(plan), Injected: inj.Injected,
		Recoveries: rep.Recoveries, Unrecovered: rep.Unrecovered,
		Availability: rep.Availability, Violations: vs,
	}
}
