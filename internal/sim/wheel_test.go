package sim

import (
	"testing"

	"repro/internal/units"
)

// wheelSpan is the horizon covered by all wheel levels: events at or past
// base+wheelSpan can only live in the overflow heap.
const wheelSpan = Time(1) << (wheelBits * wheelLevels)

// wheelOf digs the timer wheel out of an engine for white-box assertions.
func wheelOf(t *testing.T, e *Engine) *timerWheel {
	t.Helper()
	w, ok := e.sched.(*timerWheel)
	if !ok {
		t.Fatalf("engine scheduler is %T, want *timerWheel", e.sched)
	}
	return w
}

// TestWheelFarFutureOverflowCascade proves the overflow path end to end: an
// event beyond the wheel span waits in the overflow heap, rejoins the wheel
// as the cursor approaches, and still fires at its exact time in order with
// near-term traffic.
func TestWheelFarFutureOverflowCascade(t *testing.T) {
	e := NewEngineSched(1, nil, SchedWheel)
	w := wheelOf(t, e)
	var got []Time
	record := func() { got = append(got, e.Now()) }
	far := wheelSpan + 12345 // beyond the span from base=0
	e.At(far, "watchdog", record)
	if len(w.overflow) != 1 {
		t.Fatalf("far-future event not in overflow heap (len=%d)", len(w.overflow))
	}
	e.At(10, "near", record)
	e.At(far-1, "almost", record)
	e.Run()
	want := []Time{10, far - 1, far}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if len(w.overflow) != 0 {
		t.Fatalf("overflow heap still holds %d events after drain", len(w.overflow))
	}
}

// TestWheelScheduleAtExactDeadline covers the parked-cursor seam: a
// deadline-bounded run leaves the wheel's base on the next future event, and
// schedules at or before the deadline made between runs (legal: when ==
// Now()) must still fire, in time order, before that future event.
func TestWheelScheduleAtExactDeadline(t *testing.T) {
	e := NewEngineSched(1, nil, SchedWheel)
	var got []Time
	record := func() { got = append(got, e.Now()) }
	e.At(100, "future", record)
	e.RunUntil(50) // parks the wheel cursor on the event at 100
	e.At(50, "at-deadline", record)
	e.At(75, "mid", record)
	e.At(100, "same-tick", record)
	e.Run()
	want := []Time{50, 75, 100, 100}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestWheelCancelThenReuseAcrossCascade checks generation-safe handles when
// the cancelled event's storage travels through a cascade: cancel a
// higher-level resident, let the pool reap and reuse it, and make sure the
// stale handle stays inert while the new occupant (in a different wheel
// slot) fires exactly once.
func TestWheelCancelThenReuseAcrossCascade(t *testing.T) {
	arena := NewArena()
	arena.SetScheduler(SchedWheel)
	e := NewEngineArena(1, arena)
	// 20000 ticks from base lands above level 0 (64 ticks) and level 1
	// (4096 ticks): the event must cascade at least twice to fire.
	h1 := e.At(20000, "victim", func() { t.Fatal("cancelled event fired") })
	if !h1.Cancel() {
		t.Fatal("live cancel failed")
	}
	// Run past the cancelled event's time: the pop loop cascades it down,
	// reaps it, and recycles its storage into the arena free list.
	e.RunUntil(30000)
	if got := len(arena.free); got != 1 {
		t.Fatalf("free list = %d after reap, want 1", got)
	}
	fired := 0
	h2 := e.At(50000, "reuse", func() { fired++ })
	if h1.ev != h2.ev {
		t.Fatal("pool did not reuse the reaped event (test premise broken)")
	}
	if h1.Cancel() || h1.Pending() {
		t.Fatal("stale handle must be inert after its event was reaped")
	}
	if !h2.Pending() {
		t.Fatal("new occupant lost its schedule")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("new occupant fired %d times, want 1", fired)
	}
}

// TestWheelStopMidBucketDrainPoolConsistency mirrors pool_test.go's Stop
// audit for the wheel's same-tick batch drain: Stop in the middle of a
// same-instant bucket must leave the undrained suffix live (handles
// pending, no recycled event still referenced) and a resumed run must fire
// the remainder in FIFO order.
func TestWheelStopMidBucketDrainPoolConsistency(t *testing.T) {
	arena := NewArena()
	arena.SetScheduler(SchedWheel)
	e := NewEngineArena(1, arena)
	fired := make([]int, 0, 10)
	handles := make([]Handle, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, e.At(5, "burst", func() {
			fired = append(fired, i)
			if len(fired) == 3 {
				e.Stop()
			}
		}))
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events before Stop, want 3", len(fired))
	}
	if got := len(arena.free); got != 3 {
		t.Fatalf("free list holds %d events after Stop, want the 3 fired", got)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after Stop, want 7", e.Pending())
	}
	for i, h := range handles {
		if want := i >= 3; h.Pending() != want {
			t.Fatalf("handle %d pending = %v, want %v", i, h.Pending(), want)
		}
	}
	inSched := map[*event]bool{}
	e.sched.forEach(func(ev *event) { inSched[ev] = true })
	for _, ev := range arena.free {
		if inSched[ev] {
			t.Fatal("recycled event still referenced by the wheel")
		}
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("resumed run fired %d total, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-tick bucket fired out of FIFO order: %v", fired)
		}
	}
	if got := len(arena.free); got != 10 {
		t.Fatalf("free list holds %d events after drain, want 10", got)
	}
}

// TestWheelSteadyStateZeroAlloc asserts the PR 5 zero-allocation property
// holds for the wheel hot path at a realistic cadence: 12 µs inter-event
// gaps walk every level-1/-2 slot and cascade continuously, and once the
// bucket slices and free list are warm a schedule→cascade→fire→recycle
// cycle must not allocate.
func TestWheelSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs AllocsPerRun")
	}
	e := NewEngineSched(1, nil, SchedWheel)
	n := 0
	fn := func() { n++ }
	const gap = Duration(12 * units.Microsecond)
	// Warm every slot's bucket capacity across the levels the cadence
	// touches (level 2 wraps once per ~2.6e5 ticks; 10k events at 12k-tick
	// spacing wrap it hundreds of times).
	for i := 0; i < 10000; i++ {
		e.After(gap, "warm", fn)
		e.RunUntil(e.Now().Add(gap))
	}
	const name = "steady"
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.After(gap, name, fn)
		e.After(2*gap, name, fn)
		h.Cancel()
		e.RunUntil(e.Now().Add(3 * gap))
	})
	if allocs != 0 {
		t.Fatalf("wheel steady state allocates %.1f/op, want 0", allocs)
	}
}
