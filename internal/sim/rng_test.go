package sim

import "testing"

func drawN(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Deriving a named stream must not depend on the parent's stream position:
// drawing from the parent first, or deriving other streams first, must not
// change what the named stream yields.
func TestStreamIndependentOfDrawOrder(t *testing.T) {
	a := NewRNG(7)
	want := drawN(a.Stream("x"), 8)

	b := NewRNG(7)
	drawN(b, 100)          // perturb the parent stream
	_ = b.Stream("other")  // derive an unrelated stream
	_ = b.Stream("other2") // and another
	if got := drawN(b.Stream("x"), 8); !equalU64(got, want) {
		t.Fatal("named stream depends on parent draw order")
	}
}

// Split, by contrast, consumes a parent draw — the documented hazard.
func TestSplitConsumesParentStream(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	a.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Split did not consume a draw; hazard documentation is stale")
	}
}

// Different names must give different sequences; the same name the same.
func TestStreamNaming(t *testing.T) {
	r := NewRNG(42)
	x := drawN(r.Stream("x"), 4)
	y := drawN(r.Stream("y"), 4)
	if equalU64(x, y) {
		t.Fatal("streams x and y coincide")
	}
	if got := drawN(NewRNG(42).Stream("x"), 4); !equalU64(got, x) {
		t.Fatal("stream x not reproducible from the same seed")
	}
}

// Engine.Stream memoizes: two claims of one name share the stateful stream.
func TestEngineStreamMemoized(t *testing.T) {
	e := NewEngine(1)
	s1 := e.Stream("a")
	v := s1.Uint64()
	s2 := e.Stream("a")
	if s1 != s2 {
		t.Fatal("Engine.Stream returned distinct generators for one name")
	}
	if s2.Uint64() == v {
		t.Fatal("memoized stream restarted instead of continuing")
	}
}

func TestStableSeedSeparator(t *testing.T) {
	if StableSeed("ab", "c") == StableSeed("a", "bc") {
		t.Fatal("StableSeed concatenates parts without separation")
	}
	if StableSeed("x") != StableSeed("x") {
		t.Fatal("StableSeed not deterministic")
	}
}

func TestTotalProcessedAccumulates(t *testing.T) {
	before := TotalProcessed()
	e := NewEngine(1)
	for i := 0; i < 10; i++ {
		e.After(Duration(i), "tick", func() {})
	}
	e.Run()
	if got := TotalProcessed() - before; got < 10 {
		t.Fatalf("global event counter advanced by %d, want >= 10", got)
	}
}
