package sim

import "testing"

// TestHandleAliasingAfterRecycle pins the bug class event pooling
// introduces: a handle kept past its event's firing must not alias the
// pool's next occupant of the same storage. Cancelling the stale handle has
// to report false and leave the new schedule untouched.
func TestHandleAliasingAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	firedA := false
	h1 := e.At(10, "a", func() { firedA = true })
	e.Run()
	if !firedA {
		t.Fatal("first event did not fire")
	}
	if h1.Pending() {
		t.Fatal("stale handle still pending after its event fired")
	}
	firedB := false
	h2 := e.At(20, "b", func() { firedB = true })
	if h1.ev != h2.ev {
		t.Fatal("pool did not reuse the recycled event (test premise broken)")
	}
	if h1.gen == h2.gen {
		t.Fatal("recycle did not advance the generation counter")
	}
	if h1.Cancel() {
		t.Fatal("cancelling a stale handle must report false")
	}
	if !h2.Pending() {
		t.Fatal("stale-handle Cancel retracted the new occupant")
	}
	e.Run()
	if !firedB {
		t.Fatal("new occupant did not fire after stale-handle Cancel")
	}
}

// TestCancelledHandleAfterRecycleIsStale covers the cancel-side variant:
// once a cancelled event is reaped by the pop loop and reused, the original
// handle must go inert rather than cancel the reuse.
func TestCancelledHandleAfterRecycleIsStale(t *testing.T) {
	e := NewEngine(1)
	h1 := e.At(10, "a", func() { t.Fatal("cancelled event fired") })
	if !h1.Cancel() {
		t.Fatal("live cancel should succeed")
	}
	e.Run() // the pop loop reaps the cancelled event into the free list
	fired := false
	h2 := e.At(20, "b", func() { fired = true })
	if h1.ev != h2.ev {
		t.Fatal("pool did not reuse the reaped event (test premise broken)")
	}
	if h1.Cancel() || h1.Pending() {
		t.Fatal("handle of a reaped cancellation must be inert")
	}
	if !h2.Pending() {
		t.Fatal("new occupant lost its schedule")
	}
	e.Run()
	if !fired {
		t.Fatal("new occupant did not fire")
	}
}

// TestStopDuringRunPoolConsistency audits the Stop/pooling interaction: a
// stopped run must leave every unfired event in the heap with a live handle
// and exactly the popped events in the free list, and a resumed run must
// fire the remainder exactly once. This is the guard against stale heap
// entries resurfacing after pool recycle (see eventHeap.Pop).
func TestStopDuringRunPoolConsistency(t *testing.T) {
	arena := NewArena()
	e := NewEngineArena(1, arena)
	fired := make([]int, 0, 10)
	handles := make([]Handle, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, e.At(Time(i+1), "n", func() {
			fired = append(fired, i)
			if len(fired) == 3 {
				e.Stop()
			}
		}))
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events before Stop, want 3", len(fired))
	}
	if got := len(arena.free); got != 3 {
		t.Fatalf("free list holds %d events after Stop, want the 3 fired", got)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after Stop, want 7", e.Pending())
	}
	for i, h := range handles {
		if want := i >= 3; h.Pending() != want {
			t.Fatalf("handle %d pending = %v, want %v", i, h.Pending(), want)
		}
	}
	// No recycled event may still sit in the scheduler.
	inSched := map[*event]bool{}
	e.sched.forEach(func(ev *event) { inSched[ev] = true })
	for _, ev := range arena.free {
		if inSched[ev] {
			t.Fatal("recycled event still referenced by the scheduler")
		}
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("resumed run fired %d total, want 10", len(fired))
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("events fired out of order or twice: %v", fired)
		}
	}
	if got := len(arena.free); got != 10 {
		t.Fatalf("free list holds %d events after drain, want 10", got)
	}
}

// TestArenaSharedAcrossEngines models the runner's per-worker reuse: a
// second engine on the same arena must schedule out of the first engine's
// recycled storage, and an abandoned engine's still-pending events must
// never leak into the shared free list.
func TestArenaSharedAcrossEngines(t *testing.T) {
	arena := NewArena()
	e1 := NewEngineArena(1, arena)
	for i := 0; i < 5; i++ {
		e1.At(Time(i), "a", func() {})
	}
	e1.At(100, "abandoned", func() { t.Fatal("must not fire") })
	e1.RunUntil(10) // drains the 5, abandons the one at t=100
	if got := len(arena.free); got != 5 {
		t.Fatalf("free list = %d, want 5 (abandoned event must stay out)", got)
	}
	e2 := NewEngineArena(2, arena)
	n := 0
	for i := 0; i < 5; i++ {
		e2.At(Time(i), "b", func() { n++ })
	}
	if got := len(arena.free); got != 0 {
		t.Fatalf("second engine did not reuse pooled events: %d left", got)
	}
	e2.Run()
	if n != 5 {
		t.Fatalf("second engine fired %d, want 5", n)
	}
}

// TestPoolingDisabledEquivalence checks SetPooling(false) keeps scheduling
// and handle semantics identical — only reuse is turned off.
func TestPoolingDisabledEquivalence(t *testing.T) {
	e := NewEngine(1)
	e.SetPooling(false)
	fired := false
	h1 := e.At(10, "a", func() { fired = true })
	e.Run()
	if !fired || h1.Pending() || h1.Cancel() {
		t.Fatal("unpooled handle semantics diverged")
	}
	h2 := e.At(20, "b", func() {})
	if h1.ev == h2.ev {
		t.Fatal("pooling disabled but event storage was reused")
	}
	if !h2.Cancel() {
		t.Fatal("live cancel failed with pooling off")
	}
}

// TestScheduleFireRecycleZeroAlloc asserts the tentpole property at the
// engine level: a steady-state schedule→fire→recycle cycle performs zero
// heap allocations once the arena and heap are warm.
func TestScheduleFireRecycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs AllocsPerRun")
	}
	e := NewEngine(1)
	n := 0
	fn := func() { n++ }
	// Warm the heap slice and free list.
	for i := 0; i < 64; i++ {
		e.After(1, "warm", fn)
	}
	e.Run()
	const name = "steady"
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.After(1, name, fn)
		e.After(2, name, fn)
		h.Cancel()
		e.RunUntil(e.Now() + 3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire/recycle allocates %.1f/op, want 0", allocs)
	}
}
