package sim

// Trigger coalesces any number of Fire requests at the same instant into a
// single scheduled invocation of its callback. It is the building block for
// "recompute once, no matter how many things changed" patterns: bulk flow
// setup, link flaps, and mode transitions can all poke the trigger and the
// expensive recomputation runs exactly once at the current simulated time.
//
// A Trigger is single-goroutine, like the Engine it schedules on.
type Trigger struct {
	eng    *Engine
	name   string
	fn     func()
	handle Handle
	fire   func() // allocated once so repeated arms stay allocation-free
}

// NewTrigger builds a trigger that runs fn on the engine when fired.
func NewTrigger(eng *Engine, name string, fn func()) *Trigger {
	t := &Trigger{eng: eng, name: name, fn: fn}
	t.fire = func() { t.fn() }
	return t
}

// Fire arms the trigger at the engine's current time. If a firing is already
// pending the call is a no-op, so N same-instant Fires produce one callback.
// It reports whether a new firing was scheduled.
func (t *Trigger) Fire() bool {
	if t.handle.Pending() {
		return false
	}
	t.handle = t.eng.At(t.eng.Now(), t.name, t.fire)
	return true
}

// Pending reports whether a firing is currently scheduled.
func (t *Trigger) Pending() bool { return t.handle.Pending() }

// Cancel retracts a pending firing. It reports whether one was pending.
func (t *Trigger) Cancel() bool { return t.handle.Cancel() }
