// Scheduler backends for the event engine.
//
// The engine's event queue is behind the small scheduler interface so two
// interchangeable implementations can back it: the original binary heap
// (O(log n) push/pop, kept as the differential reference and fallback) and a
// hierarchical timer wheel (amortized O(1) schedule/pop for the dominant
// short-horizon events — NIC inter-packet gaps, ITR timers, vhost poll
// rounds — with same-tick batching). Both produce byte-identical schedules:
// events fire in (when, seq) order, so any figure must render the same
// bytes under either backend. The wheel≡heap differential tests
// (FuzzEngineSchedule, the runner and experiment differential suites) gate
// that equivalence.

package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"
)

// SchedulerKind selects the engine's event-queue implementation.
type SchedulerKind uint8

const (
	// SchedDefault resolves to the arena's kind if set, else the
	// process-wide default (the wheel).
	SchedDefault SchedulerKind = iota
	// SchedWheel is the hierarchical timer wheel (calendar queue).
	SchedWheel
	// SchedHeap is the binary heap, the original O(log n) scheduler kept as
	// the differential reference.
	SchedHeap
)

// String names the kind the way the -sched flag spells it.
func (k SchedulerKind) String() string {
	switch k {
	case SchedWheel:
		return "wheel"
	case SchedHeap:
		return "heap"
	}
	return "default"
}

// ParseSchedulerKind decodes a -sched flag value.
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "wheel":
		return SchedWheel, nil
	case "heap":
		return SchedHeap, nil
	case "", "default":
		return SchedDefault, nil
	}
	return SchedDefault, fmt.Errorf("sim: unknown scheduler %q (want wheel or heap)", s)
}

// defaultSched is the process-wide scheduler default, read by engines
// constructed without an explicit kind. Atomic so a CLI flag set at startup
// and parallel test runs never race.
var defaultSched atomic.Uint32

// DefaultScheduler reports the process-wide default scheduler kind.
func DefaultScheduler() SchedulerKind {
	if k := SchedulerKind(defaultSched.Load()); k != SchedDefault {
		return k
	}
	return SchedWheel
}

// SetDefaultScheduler sets the process-wide default (the -sched flag).
func SetDefaultScheduler(k SchedulerKind) { defaultSched.Store(uint32(k)) }

// scheduler is the engine's event queue. The contract mirrors how RunUntil
// drives it: peek returns the earliest pending event in (when, seq) order
// (nil when empty) and pop removes exactly the event the immediately
// preceding peek returned — no schedule call happens between the two.
// Cancelled events stay queued and are popped (then reaped) normally, the
// same lazy-cancel protocol the heap always used.
type scheduler interface {
	schedule(ev *event)
	peek() *event
	pop() *event
	len() int
	forEach(fn func(*event))
}

// newScheduler builds the queue for a resolved (non-default) kind.
func newScheduler(kind SchedulerKind) scheduler {
	if kind == SchedHeap {
		return &heapSched{}
	}
	return newTimerWheel()
}

// heapSched adapts the original binary heap to the scheduler interface.
type heapSched struct {
	h eventHeap
}

func (s *heapSched) schedule(ev *event) { heap.Push(&s.h, ev) }

func (s *heapSched) peek() *event {
	if len(s.h) == 0 {
		return nil
	}
	return s.h[0]
}

func (s *heapSched) pop() *event { return heap.Pop(&s.h).(*event) }

func (s *heapSched) len() int { return len(s.h) }

func (s *heapSched) forEach(fn func(*event)) {
	for _, ev := range s.h {
		fn(ev)
	}
}

// Timer-wheel geometry. Level i has 64 slots of width 64^i ticks (ticks are
// simulated nanoseconds), so the five levels together span 64^5 ≈ 1.07 s of
// horizon — sized so the dominant short-horizon events (µs-scale inter-packet
// gaps and ITR timers) live in levels 0–2 and cascade at most a couple of
// times, while whole measurement windows still fit inside the wheel. Events
// past the span (watchdogs, migration deadlines, Run's sentinel horizon) wait
// in a small overflow heap and rejoin the wheel as the cursor approaches.
const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits
	wheelMask     = wheelSlots - 1
	wheelLevels   = 5
	wheelTopShift = wheelBits * (wheelLevels - 1)
)

type wheelBucket []*event

// timerWheel is a hierarchical timer wheel (calendar queue).
//
// Invariants the ordering proof leans on:
//
//   - base never exceeds the earliest wheel-resident event's time, and only
//     advances (events scheduled below base — possible after a
//     deadline-bounded run left the cursor parked on a future event — go to
//     the early heap instead, which always drains first).
//   - an event is placed at the lowest level where it is within 64 slots of
//     base, so for i ≥ 1 it lands strictly ahead of the cursor's slot, and
//     every slot is cascaded exactly when base enters its window. Hence
//     level-0 buckets are same-instant: slot width is one tick and base
//     trails all pending events, so one slot holds exactly one timestamp.
//   - a level-0 bucket is sorted by seq on activation (cascaded arrivals may
//     interleave out of order with direct schedules); events appended while
//     the bucket drains carry the highest seq yet, so the tail append keeps
//     it sorted. Draining a burst of same-instant completions is therefore
//     one bucket activation plus index bumps instead of N heap pops.
type timerWheel struct {
	base  Time
	count int
	// filled is the base value of the last refill. When base moves into a
	// new 64-tick window — by jump, or one tick at a time past a drained
	// bucket — the higher-level slots containing the new base must cascade
	// before the level-0 bitmap can be trusted; advance compares windows
	// (base>>wheelBits) against filled to notice every such crossing.
	filled Time

	levels [wheelLevels][wheelSlots]wheelBucket
	// occ[i] has bit s set iff levels[i][s] is non-empty.
	occ [wheelLevels]uint64

	// Active same-tick drain: cur points at the level-0 slot being drained
	// (a pointer, so same-instant schedules appended during the drain are
	// seen), curHead is the next index to pop, curWhen the bucket's instant.
	cur     *wheelBucket
	curHead int
	curWhen Time

	// overflow holds events beyond the wheel span, earliest first.
	overflow eventHeap
	// early holds events scheduled below base, earliest first. Only
	// schedules made outside callbacks after a deadline-bounded run can
	// land here (the cursor may then sit past Now, parked on the next
	// event), so it is cold; all early events precede all wheel events.
	early eventHeap
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

func (w *timerWheel) schedule(ev *event) {
	w.count++
	if ev.when < w.base {
		heap.Push(&w.early, ev)
		return
	}
	w.place(ev)
}

// place files a wheel-resident event (when ≥ base) at the lowest level that
// can reach it, or into the overflow heap past the wheel span.
func (w *timerWheel) place(ev *event) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		shift := uint(wheelBits * lvl)
		if (ev.when>>shift)-(w.base>>shift) < wheelSlots {
			s := uint(ev.when>>shift) & wheelMask
			w.levels[lvl][s] = append(w.levels[lvl][s], ev)
			w.occ[lvl] |= 1 << s
			return
		}
	}
	heap.Push(&w.overflow, ev)
}

func (w *timerWheel) peek() *event {
	// Early events all precede base, and every wheel event is at or past
	// base, so a non-empty early heap always holds the global minimum.
	if len(w.early) > 0 {
		return w.early[0]
	}
	for {
		if w.cur != nil {
			if w.curHead < len(*w.cur) {
				return (*w.cur)[w.curHead]
			}
			// Bucket drained; no same-instant schedule can arrive once the
			// engine has asked for the next event, so retire the slot (its
			// entries were nilled as they popped) and move past the tick.
			*w.cur = (*w.cur)[:0]
			w.occ[0] &^= 1 << (uint(w.curWhen) & wheelMask)
			w.cur = nil
			w.curHead = 0
			w.base = w.curWhen + 1
		}
		if !w.advance() {
			return nil
		}
	}
}

func (w *timerWheel) pop() *event {
	w.count--
	if len(w.early) > 0 {
		return heap.Pop(&w.early).(*event)
	}
	ev := (*w.cur)[w.curHead]
	(*w.cur)[w.curHead] = nil
	w.curHead++
	return ev
}

func (w *timerWheel) len() int { return w.count }

func (w *timerWheel) forEach(fn func(*event)) {
	for lvl := range w.levels {
		for s := range w.levels[lvl] {
			for _, ev := range w.levels[lvl][s] {
				if ev != nil { // drained prefix of the active bucket
					fn(ev)
				}
			}
		}
	}
	for _, ev := range w.overflow {
		fn(ev)
	}
	for _, ev := range w.early {
		fn(ev)
	}
}

// advance moves base forward to the next occupied level-0 tick — cascading
// every higher-level slot whose window the cursor enters — and activates
// that bucket. It reports false when the wheel and overflow are empty.
// Skips over empty regions are O(1) per level via the occupancy bitmaps, so
// a sparse schedule (one packet every few µs of ns-resolution time) never
// walks ticks one by one.
func (w *timerWheel) advance() bool {
	for {
		// If base entered a new 64-tick window since the last refill, the
		// higher-level slots now containing base must cascade down first —
		// the level-0 bitmap for this window is incomplete until they do.
		if w.base>>wheelBits != w.filled>>wheelBits {
			w.refill()
		}
		// Next occupied level-0 slot in the remainder of the current window.
		cursor := uint(w.base) & wheelMask
		if m := w.occ[0] >> cursor; m != 0 {
			w.activate(w.base + Time(bits.TrailingZeros64(m)))
			return true
		}
		// The rest of this window is empty. Find the earliest upcoming
		// occupied region — wrapped level-0 slots belong to the next window;
		// a higher-level slot is reached at its window start (a lower bound
		// on its earliest event, which is all a jump target needs); overflow
		// events are reached at their own time — then jump base there and
		// cascade whatever the cursor landed in.
		var next Time
		have := false
		cand := func(t Time) {
			if !have || t < next {
				next, have = t, true
			}
		}
		if m := w.occ[0] & (1<<cursor - 1); m != 0 {
			s := Time(bits.TrailingZeros64(m))
			cand((w.base &^ wheelMask) + wheelSlots + s)
		}
		for lvl := 1; lvl < wheelLevels; lvl++ {
			if w.occ[lvl] == 0 {
				continue
			}
			shift := uint(wheelBits * lvl)
			span := Time(1) << (shift + wheelBits)
			cur := uint(w.base>>shift) & wheelMask
			revStart := w.base &^ (span - 1)
			if m := w.occ[lvl] >> cur; m != 0 {
				t := revStart + (Time(cur)+Time(bits.TrailingZeros64(m)))<<shift
				if t < w.base {
					t = w.base
				}
				cand(t)
			} else {
				s := Time(bits.TrailingZeros64(w.occ[lvl]))
				cand(revStart + span + s<<shift)
			}
		}
		if len(w.overflow) > 0 {
			cand(w.overflow[0].when)
		}
		if !have {
			return false
		}
		w.base = next
		w.refill()
	}
}

// activate begins the same-tick FIFO drain of the level-0 bucket at tick.
func (w *timerWheel) activate(tick Time) {
	w.base = tick
	b := &w.levels[0][uint(tick)&wheelMask]
	if len(*b) > 1 {
		// All entries share the instant; order them by schedule seq so
		// cascaded arrivals interleave with direct schedules in FIFO order.
		slices.SortFunc(*b, func(a, c *event) int {
			switch {
			case a.seq < c.seq:
				return -1
			case a.seq > c.seq:
				return 1
			}
			return 0
		})
	}
	w.cur = b
	w.curHead = 0
	w.curWhen = tick
}

// refill runs after base jumps: overflow events now within the wheel span
// rejoin it, and the slot containing base at every level cascades down so
// the level-0 window the cursor sits in is fully populated.
func (w *timerWheel) refill() {
	w.filled = w.base
	for len(w.overflow) > 0 &&
		(w.overflow[0].when>>wheelTopShift)-(w.base>>wheelTopShift) < wheelSlots {
		w.place(heap.Pop(&w.overflow).(*event))
	}
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		shift := uint(wheelBits * lvl)
		s := uint(w.base>>shift) & wheelMask
		if w.occ[lvl]&(1<<s) != 0 {
			w.cascade(lvl, int(s))
		}
	}
}

// cascade re-files every event of the given slot one or more levels down.
// Events land strictly below lvl (base is inside this slot's window, so a
// lower level can always reach them), never back into the same bucket.
func (w *timerWheel) cascade(lvl, s int) {
	b := w.levels[lvl][s]
	w.levels[lvl][s] = b[:0]
	w.occ[lvl] &^= 1 << uint(s)
	for i, ev := range b {
		b[i] = nil
		w.place(ev)
	}
}
