//go:build race

package sim

// raceEnabled skips the alloc-count assertions under the race detector,
// whose instrumentation perturbs testing.AllocsPerRun.
const raceEnabled = true
