package sim

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.At(20, "b", func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "tie", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken events not FIFO: %v", got)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(10, "step", step)
		}
	}
	e.After(10, "step", step)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.At(10, "x", func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if h.Pending() {
		t.Fatal("cancelled handle still pending")
	}
}

func TestCancelNilSafe(t *testing.T) {
	var h Handle
	if h.Cancel() {
		t.Fatal("zero handle cancel should be false")
	}
	if h.Pending() {
		t.Fatal("zero handle should not be pending")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.At(10, "a", func() { got = append(got, e.Now()) })
	e.At(100, "b", func() { got = append(got, e.Now()) })
	end := e.RunUntil(50)
	if end != 50 {
		t.Fatalf("RunUntil returned %v, want 50", end)
	}
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("events up to deadline: %v", got)
	}
	// The later event still fires when we continue.
	e.RunUntil(200)
	if len(got) != 2 || got[1] != 100 {
		t.Fatalf("resumed run: %v", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(50, "past", func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), "n", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1)
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.After(1, "loop", loop) }
	e.After(1, "loop", loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit should panic")
		}
	}()
	e.Run()
}

// TestEventLimitPanicReportsNextAndRecycles pins the satellite bug: the
// limit panic used to fire before e.now advanced and before the popped
// event was recycled, so the diagnostic named the *previous* event's time
// and a recovering test saw the popped event leaked from the pool. The
// fixed panic names the event that tripped the limit and leaves the arena
// fully consistent. Times are seconds-scale because Time renders at
// millisecond precision — ns-scale whens would all print "0.000s" and the
// message could not discriminate the fix.
func TestEventLimitPanicReportsNextAndRecycles(t *testing.T) {
	arena := NewArena()
	e := NewEngineArena(1, arena)
	e.SetEventLimit(2)
	for i := 5; i <= 7; i++ {
		e.At(Time(i)*Time(units.Second), "ev", func() {})
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("event limit should panic")
			}
			msg, ok := r.(string)
			if !ok {
				t.Fatalf("panic value %T, want string", r)
			}
			// The third event (7s) trips the limit; the pre-fix message
			// reported the second event's time (6s).
			if !strings.Contains(msg, "7.000s") {
				t.Fatalf("panic %q does not name the limit-tripping event's time", msg)
			}
		}()
		e.Run()
	}()
	// Recover-and-audit: the popped event must be recycled, not leaked.
	if got := len(arena.free); got != 3 {
		t.Fatalf("free list holds %d events after limit panic, want 3", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after limit panic, want 0", e.Pending())
	}
	if got := arena.Corruptions(); got != 0 {
		t.Fatalf("arena corruptions = %d after limit panic, want 0", got)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tk := NewTicker(e, 10, "tick", func(now Time) {
		times = append(times, now)
		if len(times) == 3 {
			// change period mid-flight
			// next ticks at 40, 50 becomes 30+25=55...
		}
	})
	e.RunUntil(35)
	tk.Stop()
	e.Run()
	if len(times) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", times)
	}
	for i, want := range []Time{10, 20, 30} {
		if times[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestTickerSetPeriod(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	var tk *Ticker
	tk = NewTicker(e, 10, "tick", func(now Time) {
		times = append(times, now)
		if now == 20 {
			tk.SetPeriod(5)
		}
	})
	e.RunUntil(31)
	tk.Stop()
	want := []Time{10, 20, 25, 30}
	if len(times) != len(want) {
		t.Fatalf("ticks %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks %v, want %v", times, want)
		}
	}
}

func TestTickerSetPeriodOutsideCallback(t *testing.T) {
	// The pending tick was armed at t=0 with period 100. Retargeting to 20
	// at t=10 must credit the 10 units already elapsed: the next tick is
	// due at min(0+100, 0+20) = 20, not at Now()+20 = 30.
	e := NewEngine(1)
	var times []Time
	tk := NewTicker(e, 100, "tick", func(now Time) { times = append(times, now) })
	e.RunUntil(10)
	tk.SetPeriod(20)
	e.RunUntil(55)
	tk.Stop()
	want := []Time{20, 40}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("ticks %v, want %v", times, want)
	}
}

// TestTickerSetPeriodNoStarvation pins the satellite bug: before the fix,
// SetPeriod outside the callback re-armed with the full new period from
// Now(), so an ITR-style controller retargeting faster than the period
// could postpone the tick forever. With elapsed-time credit the deadline
// is anchored at armedAt and repeated same-period retargets are no-ops.
func TestTickerSetPeriodNoStarvation(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tk := NewTicker(e, 50, "itr", func(now Time) { times = append(times, now) })
	for i := 1; i <= 9; i++ {
		e.RunUntil(Time(i * 10))
		tk.SetPeriod(50) // retarget mid-interval, same period
	}
	tk.Stop()
	if len(times) != 1 || times[0] != 50 {
		t.Fatalf("ticks %v, want a single tick at 50 (starved by retargeting?)", times)
	}
}

// TestTickerSetPeriodShrinkToPast covers the clamp: shrinking the period so
// the credited deadline lands before Now() must fire at Now(), not panic on
// a past schedule.
func TestTickerSetPeriodShrinkToPast(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tk := NewTicker(e, 100, "tick", func(now Time) { times = append(times, now) })
	e.RunUntil(30)
	tk.SetPeriod(10) // credited deadline 0+10=10 is in the past → due now
	e.RunUntil(45)
	tk.Stop()
	want := []Time{30, 40}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("ticks %v, want %v", times, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(42)
		var out []uint64
		NewTicker(e, units.Duration(7), "t", func(now Time) {
			out = append(out, e.RNG().Uint64())
		})
		e.RunUntil(100)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

// Property: for any set of (time, id) pairs, events fire sorted by time,
// with ties broken by schedule order.
func TestOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine(7)
		type rec struct {
			when Time
			seq  int
		}
		var want []rec
		var got []rec
		for i, r := range raw {
			when := Time(r % 64)
			want = append(want, rec{when, i})
			i := i
			e.At(when, "p", func() { got = append(got, rec{e.Now(), i}) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].when < want[j].when })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) did not cover range: %v", seen)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	// Streams should differ.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide too often: %d/64", same)
	}
}
