package sim

// RNG is a small deterministic pseudo-random source (splitmix64 core with an
// xorshift mix), used wherever the simulation needs controlled randomness
// (dirty-page selection, jitter). It is deliberately independent of
// math/rand so results cannot drift with Go releases.
type RNG struct {
	seed  uint64 // the seed this generator was created with (stream identity)
	state uint64
}

// NewRNG returns a generator seeded by seed. Seed 0 is remapped so the
// stream is never the all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{seed: seed, state: seed}
}

// Seed reports the seed the generator was created with. It identifies the
// stream and does not change as values are drawn.
func (r *RNG) Seed() uint64 { return r.seed }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator by consuming one draw from r.
//
// Deprecated: the derived stream depends on how many values were drawn from
// r before the call, so adding a Split (or any draw) in one component
// perturbs every later Split in another. Use Stream, which derives from the
// seed and a name instead of from the stream position.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// Stream derives the named sub-stream of this generator. The derivation
// uses only the generator's seed and the name — never the stream position —
// so the result is identical no matter how many values have been drawn from
// r or how many other streams were derived first. Two calls with the same
// name return generators producing the same sequence.
func (r *RNG) Stream(name string) *RNG {
	return NewRNG(mix64(r.seed ^ StableSeed(name)))
}

// StableSeed hashes the given parts into a deterministic 64-bit seed
// (FNV-1a over the parts with a separator). It is the canonical way to give
// each shard of a parallel run — an experiment, a sweep point — a seed that
// depends only on what the shard is, never on which worker runs it or in
// what order.
func StableSeed(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x1f // separator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	return h
}

// mix64 is one splitmix64 finalization round — enough avalanche that
// related seeds (seed ^ hash) give unrelated streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
