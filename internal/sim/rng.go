package sim

// RNG is a small deterministic pseudo-random source (splitmix64 core with an
// xorshift mix), used wherever the simulation needs controlled randomness
// (dirty-page selection, jitter). It is deliberately independent of
// math/rand so results cannot drift with Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded by seed. Seed 0 is remapped so the
// stream is never the all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator, useful for giving each component
// its own stream so adding a component does not perturb the others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}
