package sim

import "testing"

// TestArenaDoublePutDetected exercises the pool-integrity tripwire: a
// second put of the same event must be counted and refused (the free list
// must not grow), and a normal get/put cycle must stay clean.
func TestArenaDoublePutDetected(t *testing.T) {
	a := NewArena()
	ev := a.get() // fresh allocation, not pooled
	a.put(ev)
	if got := a.Corruptions(); got != 0 {
		t.Fatalf("clean put: corruptions = %d, want 0", got)
	}
	if len(a.free) != 1 {
		t.Fatalf("free list length = %d, want 1", len(a.free))
	}
	a.put(ev) // double recycle
	if got := a.Corruptions(); got != 1 {
		t.Fatalf("double put: corruptions = %d, want 1", got)
	}
	if len(a.free) != 1 {
		t.Fatalf("double put grew the free list: length = %d, want 1", len(a.free))
	}
	// The event can still be reused cleanly after the refused double-put.
	ev2 := a.get()
	if ev2 != ev {
		t.Fatalf("get did not return the pooled event")
	}
	a.put(ev2)
	if got := a.Corruptions(); got != 1 {
		t.Fatalf("post-recovery cycle: corruptions = %d, want 1", got)
	}
}

// TestArenaGetUnpooledDetected covers the mirror-image failure: a free-list
// occupant that lost its pooled mark (a second owner cleared or reused it)
// is counted when popped.
func TestArenaGetUnpooledDetected(t *testing.T) {
	a := NewArena()
	ev := &event{}
	a.free = append(a.free, ev) // bypass put: simulates an aliased entry
	if got := a.get(); got != ev {
		t.Fatalf("get did not return the planted event")
	}
	if got := a.Corruptions(); got != 1 {
		t.Fatalf("unpooled get: corruptions = %d, want 1", got)
	}
}

// TestEngineArenaAccessor checks engines expose the arena they schedule out
// of — shared or private — so checkers can read its corruption count.
func TestEngineArenaAccessor(t *testing.T) {
	shared := NewArena()
	e := NewEngineArena(1, shared)
	if e.Arena() != shared {
		t.Fatalf("Arena() did not return the shared arena")
	}
	e2 := NewEngine(2)
	if e2.Arena() == nil {
		t.Fatalf("private arena not exposed")
	}
	e2.After(1, "x", func() {})
	e2.Run()
	if got := e2.Arena().Corruptions(); got != 0 {
		t.Fatalf("healthy run: corruptions = %d, want 0", got)
	}
}
