package sim

import (
	"testing"

	"repro/internal/units"
)

func TestTriggerCoalescesSameInstantFires(t *testing.T) {
	eng := NewEngine(1)
	runs := 0
	tr := NewTrigger(eng, "recompute", func() { runs++ })

	eng.At(units.Time(10*units.Microsecond), "poke", func() {
		if !tr.Fire() {
			t.Error("first Fire should schedule")
		}
		if tr.Fire() {
			t.Error("second same-instant Fire should coalesce")
		}
		if !tr.Pending() {
			t.Error("trigger should be pending after Fire")
		}
	})
	eng.RunUntil(units.Time(units.Millisecond))
	if runs != 1 {
		t.Fatalf("coalesced fires ran %d times, want 1", runs)
	}

	// After the callback ran the trigger re-arms cleanly.
	eng.At(eng.Now().Add(units.Microsecond), "poke2", func() { tr.Fire() })
	eng.RunUntil(eng.Now().Add(units.Millisecond))
	if runs != 2 {
		t.Fatalf("re-armed trigger ran %d times, want 2", runs)
	}
	if tr.Pending() {
		t.Error("trigger should not be pending after firing")
	}
}

func TestTriggerCancel(t *testing.T) {
	eng := NewEngine(1)
	runs := 0
	tr := NewTrigger(eng, "recompute", func() { runs++ })

	eng.At(units.Time(5*units.Microsecond), "arm", func() {
		tr.Fire()
		if !tr.Cancel() {
			t.Error("Cancel of a pending trigger should report true")
		}
		if tr.Pending() {
			t.Error("cancelled trigger should not be pending")
		}
		if tr.Cancel() {
			t.Error("double Cancel should report false")
		}
	})
	eng.RunUntil(units.Time(units.Millisecond))
	if runs != 0 {
		t.Fatalf("cancelled trigger ran %d times, want 0", runs)
	}
}

func TestTriggerFiresAtCurrentInstant(t *testing.T) {
	eng := NewEngine(1)
	var firedAt units.Time
	tr := NewTrigger(eng, "now", func() { firedAt = eng.Now() })
	at := units.Time(42 * units.Microsecond)
	eng.At(at, "arm", func() { tr.Fire() })
	eng.RunUntil(units.Time(units.Millisecond))
	if firedAt != at {
		t.Fatalf("trigger fired at %v, want %v", firedAt, at)
	}
}
