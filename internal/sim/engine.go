// Package sim implements the deterministic discrete-event simulation engine
// that everything else in the simulator is built on.
//
// Events are callbacks scheduled at a simulated time. Events scheduled for
// the same instant fire in the order they were scheduled (FIFO), so a run
// with a given seed is exactly reproducible. Handles returned by the
// scheduling methods allow cancellation, which is how interrupt throttles,
// watchdogs, and migration phases are retracted.
package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/units"
)

// Time and Duration alias the shared unit types for convenience.
type (
	Time     = units.Time
	Duration = units.Duration
)

// Handle identifies a scheduled event and allows cancelling it. It is a
// small value type: the zero Handle is valid and permanently "not pending".
//
// Events are pooled (see Arena), so the *event a Handle points at may be
// recycled and re-issued to a later, unrelated schedule. The generation
// counter makes that safe: every recycle bumps the event's gen, so a stale
// Handle's gen no longer matches and Cancel/Pending degrade to no-ops
// instead of aliasing the pool's next occupant.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel retracts the event if it has not fired yet. It reports whether the
// event was still pending. Cancelling a zero, stale (recycled), or
// already-cancelled handle is a safe no-op.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.gen != h.gen || h.ev.cancelled {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.cancelled
}

type event struct {
	when      Time
	seq       uint64 // schedule order, breaks ties deterministically
	name      string
	fn        func()
	cancelled bool
	index     int // heap index
	// gen is bumped every time the event is recycled into the free list.
	// Handles capture the gen at schedule time; a mismatch means the handle
	// outlived its schedule (the event fired, or was cancelled and reaped).
	gen uint64
	// pooled is true while the event sits on an Arena free list. It is the
	// double-recycle tripwire: putting an already-pooled event (or getting
	// one that thinks it is live) means two owners held the same event,
	// which is exactly the aliasing bug pooling can introduce.
	pooled bool
}

// Arena is a free list of event objects. Engines that run sequentially on
// one goroutine (the parallel runner's per-worker point loop) can share one
// Arena so later engines schedule out of the storage earlier engines warmed
// up, instead of re-paying the allocations per point.
//
// Ownership rule: only events the engine has popped from its heap are ever
// recycled, so an abandoned engine (deadline hit, testbed dropped) keeps
// exclusive references to its still-pending events and cannot corrupt an
// arena it shares with a successor. An Arena is not safe for concurrent use.
type Arena struct {
	free []*event
	// corruptions counts integrity failures the pool detected and refused:
	// an event recycled twice, or a free-list entry that was not marked
	// pooled. Zero on every healthy run; the chaos invariant checker gates
	// on it (pool-integrity invariant).
	corruptions int64
	// sched, when not SchedDefault, is the scheduler kind engines created
	// on this arena use. The arena is the one object that already flows
	// from the runner's worker loop into every engine a point builds, so it
	// doubles as the per-worker scheduler selection channel — no globals,
	// so two differential runs with different kinds can share a process.
	sched SchedulerKind
}

// NewArena returns an empty event free list.
func NewArena() *Arena { return &Arena{} }

// SetScheduler sets the scheduler kind engines created on this arena use
// (SchedDefault defers to the process-wide default). It only affects engines
// created afterwards.
func (a *Arena) SetScheduler(k SchedulerKind) { a.sched = k }

// Scheduler reports the arena's scheduler kind.
func (a *Arena) Scheduler() SchedulerKind { return a.sched }

// Corruptions reports how many pool-integrity failures (double-recycles,
// free-list entries not marked pooled) the arena has detected.
func (a *Arena) Corruptions() int64 { return a.corruptions }

// get pops a recycled event, or allocates when the free list is dry.
func (a *Arena) get() *event {
	if n := len(a.free); n > 0 {
		ev := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		if !ev.pooled {
			// A free-list occupant that does not believe it is pooled has a
			// second owner somewhere. Count it; handing it out anyway is no
			// worse than the aliasing that already happened.
			a.corruptions++
		}
		ev.pooled = false
		return ev
	}
	return &event{}
}

// put recycles an event. The caller must have bumped gen already. A
// double-put (the event is already on the free list) is detected, counted,
// and refused — the event is not appended twice, so a detected corruption
// does not also corrupt future schedules.
func (a *Arena) put(ev *event) {
	if ev.pooled {
		a.corruptions++
		return
	}
	ev.pooled = true
	a.free = append(a.free, ev)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	// Clear the vacated tail slot. With pooling this matters beyond GC
	// hygiene: the popped event is about to be recycled into the Arena, and
	// a dangling heap-slice reference to it would otherwise be the one path
	// by which a stale entry could resurface after Stop-during-Run.
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the simulation event loop. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// sched is the event queue — the binary heap or the timer wheel,
	// selected at construction; kind records which.
	sched   scheduler
	kind    SchedulerKind
	seed    uint64
	rng     *RNG
	streams map[string]*RNG
	stopped bool
	// processed counts events executed, for diagnostics and runaway guards.
	processed uint64
	// flushed is the portion of processed already added to the global
	// counter (see TotalProcessed).
	flushed uint64
	// limit bounds the number of executed events; 0 means unlimited.
	limit uint64
	// arena recycles event objects; pooling gates whether recycled events
	// are actually reused (false keeps the pre-pool allocate-per-schedule
	// behavior, for differential testing).
	arena   *Arena
	pooling bool
}

// NewEngine returns an engine at time zero with a deterministic RNG seeded
// by seed and a private event arena.
func NewEngine(seed uint64) *Engine {
	return NewEngineArena(seed, nil)
}

// NewEngineArena is NewEngine with a caller-supplied event arena, so
// sequentially-run engines (one experiment point after another on a runner
// worker) reuse each other's event storage. A nil arena gets a private one.
// The scheduler kind resolves arena → process default.
func NewEngineArena(seed uint64, arena *Arena) *Engine {
	return NewEngineSched(seed, arena, SchedDefault)
}

// NewEngineSched is NewEngineArena with an explicit scheduler kind.
// SchedDefault defers to the arena's kind, then the process-wide default.
func NewEngineSched(seed uint64, arena *Arena, kind SchedulerKind) *Engine {
	if arena == nil {
		arena = NewArena()
	}
	if kind == SchedDefault {
		kind = arena.sched
	}
	if kind == SchedDefault {
		kind = DefaultScheduler()
	}
	return &Engine{
		seed: seed, rng: NewRNG(seed), arena: arena, pooling: true,
		sched: newScheduler(kind), kind: kind,
	}
}

// Scheduler reports which event-queue implementation backs this engine.
func (e *Engine) Scheduler() SchedulerKind { return e.kind }

// Arena exposes the engine's event pool, so integrity checkers can read
// its corruption counter at quiesce.
func (e *Engine) Arena() *Arena { return e.arena }

// SetPooling toggles event reuse. Scheduling and handle semantics are
// identical either way (generations still advance); with pooling off every
// schedule allocates a fresh event, which is the pre-pool behavior the fuzz
// tests compare against.
func (e *Engine) SetPooling(on bool) { e.pooling = on }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// RNG returns the engine's root deterministic random source. Components
// should not draw from it directly — use Stream so each consumer has its
// own named sub-stream and adding one consumer cannot perturb another's
// draws.
func (e *Engine) RNG() *RNG { return e.rng }

// Stream returns the engine's named random sub-stream, creating it on first
// use. The stream's sequence depends only on the engine seed and the name:
// not on when it is claimed, how many other streams exist, or what has been
// drawn from any of them. Repeated calls with one name return the same
// (stateful) generator.
func (e *Engine) Stream(name string) *RNG {
	if e.streams == nil {
		e.streams = make(map[string]*RNG)
	}
	r, ok := e.streams[name]
	if !ok {
		r = e.rng.Stream(name)
		e.streams[name] = r
	}
	return r
}

// totalProcessed accumulates events executed across every engine in the
// process (atomically — parallel runners drive one engine per goroutine).
// It feeds the benchmark harness's events/sec figure.
var totalProcessed atomic.Uint64

// TotalProcessed reports the process-wide number of simulation events
// executed across all engines.
func TotalProcessed() uint64 { return totalProcessed.Load() }

// flushProcessed publishes this engine's not-yet-counted events to the
// process-wide counter. Called at the end of RunUntil so the atomic is
// touched once per run, not once per event.
func (e *Engine) flushProcessed() {
	if d := e.processed - e.flushed; d > 0 {
		totalProcessed.Add(d)
		e.flushed = e.processed
	}
}

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit bounds the total number of events the engine will execute.
// It is a guard against runaway schedules in tests; 0 disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// At schedules fn at absolute time t. Scheduling in the past (before Now)
// panics: it is always a modeling bug.
//
// The hot path is allocation-free: the event comes from the arena's free
// list and the Handle is returned by value. Callers that care about the
// zero-alloc property must pass a precomputed name (no fmt/concat at the
// call site) and a long-lived fn (no per-call closure).
func (e *Engine) At(t Time, name string, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v, before now %v", name, t, e.now))
	}
	e.seq++
	ev := e.arena.get()
	ev.when = t
	ev.seq = e.seq
	ev.name = name
	ev.fn = fn
	ev.cancelled = false
	e.sched.schedule(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn d after the current time. Negative d is clamped to 0.
func (e *Engine) After(d Duration, name string, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), name, fn)
}

// recycle returns a popped event to the arena. Bumping gen first is what
// invalidates every outstanding Handle to this schedule; it happens even
// with pooling off so handle semantics do not depend on the pooling mode.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	if e.pooling {
		e.arena.put(ev)
	}
}

// Stop makes the current Run call return once the executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// event limit is hit. It returns the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is later than the last event) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	defer e.flushProcessed()
	for !e.stopped {
		next := e.sched.peek()
		if next == nil || next.when > deadline {
			break
		}
		e.sched.pop()
		if next.cancelled {
			e.recycle(next)
			continue
		}
		if e.limit > 0 && e.processed >= e.limit {
			// Recycle before panicking so a recovering test still sees a
			// consistent pool (the popped event must not leak, and its
			// handles must go stale), and report the offending event's own
			// time — e.now still holds the previous event's.
			when, name := next.when, next.name
			e.recycle(next)
			panic(fmt.Sprintf("sim: event limit %d exceeded at %v (event %q)", e.limit, when, name))
		}
		e.now = next.when
		e.processed++
		// Recycle before calling fn: a self-rescheduling callback (tickers,
		// interrupt throttles) then reuses its own event, keeping the free
		// list at steady state. fn is saved to a local first because recycle
		// clears it; gen has already advanced, so the callback cannot cancel
		// or observe its own (now historical) schedule.
		fn := next.fn
		e.recycle(next)
		fn()
	}
	if !e.stopped && e.now < deadline && deadline < Time(1<<62-1) {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	e.sched.forEach(func(ev *event) {
		if !ev.cancelled {
			n++
		}
	})
	return n
}

// Ticker fires fn at a fixed period until cancelled. It reschedules itself
// after each firing, so fn may safely adjust the period for the next tick by
// calling SetPeriod.
type Ticker struct {
	eng    *Engine
	period Duration
	name   string
	fn     func(Time)
	tick   func() // created once; re-arming must not allocate a closure
	handle Handle
	// armedAt is when the pending tick's interval began (creation or the
	// previous firing). SetPeriod measures the already-elapsed portion of
	// the pending interval against it.
	armedAt Time
	done    bool
}

// NewTicker creates and starts a ticker whose first firing is one period
// from now. Period must be positive.
func NewTicker(eng *Engine, period Duration, name string, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, name: name, fn: fn}
	t.tick = func() {
		if t.done {
			return
		}
		t.fn(t.eng.Now())
		if !t.done {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.armedAt = t.eng.Now()
	t.handle = t.eng.After(t.period, t.name, t.tick)
}

// SetPeriod changes the period used for subsequent ticks. If called outside
// the tick callback it retargets the pending tick, crediting the portion of
// the interval already elapsed: the tick began at armedAt, so under the new
// period it is due at armedAt+p. The deadline never moves later than
// originally armed (so repeated retargeting — an ITR policy re-evaluating
// every few samples — cannot push the next firing out indefinitely) and
// never into the past (an overdue tick fires now).
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	if t.period == p {
		return
	}
	old := t.period
	t.period = p
	if t.handle.Pending() {
		deadline := t.armedAt.Add(p)
		if prev := t.armedAt.Add(old); prev < deadline {
			deadline = prev
		}
		if now := t.eng.Now(); deadline < now {
			deadline = now
		}
		t.handle.Cancel()
		t.handle = t.eng.At(deadline, t.name, t.tick)
	}
}

// Period reports the current period.
func (t *Ticker) Period() Duration { return t.period }

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
	t.handle.Cancel()
}
