package sim

import (
	"fmt"
	"testing"
)

// fireRec is one observed firing: which schedule fired, at what time, and
// as the engine's n-th executed event.
type fireRec struct {
	id   int
	when Time
}

// fuzzRun decodes data as a little op language and drives one engine with
// it, checking the engine-local invariants as it goes:
//
//   - events fire in nondecreasing time, ties broken by schedule order
//   - a successfully cancelled event never fires
//   - no event fires twice
//
// Ops (two bytes each): schedule at now+δ, schedule a chaining event whose
// callback schedules another, cancel a random outstanding handle, or run to
// now+δ. It returns the full trace so the caller can compare pooled vs
// pool-disabled engines for equivalence.
func fuzzRun(t *testing.T, data []byte, pooling bool, kind SchedulerKind) (trace []fireRec, cancels []bool) {
	t.Helper()
	e := NewEngineSched(99, nil, kind)
	e.SetPooling(pooling)
	e.SetEventLimit(100000)

	nextID := 0
	scheduledAt := map[int]Time{} // id -> when
	order := map[int]int{}        // id -> global schedule order
	cancelled := map[int]bool{}
	firedSet := map[int]bool{}
	var handles []Handle
	handleID := map[int]int{} // index in handles -> id

	schedule := func(when Time, fn func(id int)) int {
		id := nextID
		nextID++
		scheduledAt[id] = when
		order[id] = len(order)
		h := e.At(when, "fuzz", func() { fn(id) })
		handleID[len(handles)] = id
		handles = append(handles, h)
		return id
	}
	onFire := func(id int) {
		if cancelled[id] {
			t.Fatalf("pooling=%v: cancelled event %d fired", pooling, id)
		}
		if firedSet[id] {
			t.Fatalf("pooling=%v: event %d fired twice", pooling, id)
		}
		firedSet[id] = true
		trace = append(trace, fireRec{id: id, when: e.Now()})
	}

	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 4 {
		case 0: // schedule a plain event
			schedule(e.Now()+Time(arg%32), onFire)
		case 1: // schedule a chaining event: its callback schedules another
			delta := Time(arg % 8)
			schedule(e.Now()+Time(arg%16), func(id int) {
				onFire(id)
				schedule(e.Now()+1+delta, onFire)
			})
		case 2: // cancel a pseudo-random outstanding handle
			if len(handles) == 0 {
				continue
			}
			k := int(arg) % len(handles)
			id := handleID[k]
			ok := handles[k].Cancel()
			cancels = append(cancels, ok)
			if ok {
				if firedSet[id] {
					t.Fatalf("pooling=%v: Cancel succeeded on already-fired event %d", pooling, id)
				}
				cancelled[id] = true
				if handles[k].Pending() {
					t.Fatalf("pooling=%v: handle pending after successful cancel", pooling)
				}
			}
		case 3: // run forward
			e.RunUntil(e.Now() + Time(arg%64))
		}
	}
	e.Run()

	// FIFO: nondecreasing time; within a timestamp, global schedule order.
	for i := 1; i < len(trace); i++ {
		a, b := trace[i-1], trace[i]
		if b.when < a.when {
			t.Fatalf("pooling=%v: fired backwards in time: %v then %v", pooling, a, b)
		}
		if b.when == a.when && order[b.id] < order[a.id] {
			t.Fatalf("pooling=%v: same-time events fired out of schedule order: id %d (order %d) before id %d (order %d)",
				pooling, a.id, order[a.id], b.id, order[b.id])
		}
	}
	// Completeness: every never-cancelled schedule fired exactly once.
	for id, when := range scheduledAt {
		if !cancelled[id] && !firedSet[id] {
			t.Fatalf("pooling=%v: event %d (t=%v) never fired", pooling, id, when)
		}
	}
	return trace, cancels
}

// FuzzEngineSchedule fuzzes random Schedule/Cancel/Run interleavings (with
// callback-time scheduling, which is what exercises recycle-before-fn) and
// checks the ordering/cancellation/single-fire invariants on every
// scheduler×pooling combination, then requires all four runs to be
// trace-equivalent: both pooling and the choice of timer wheel vs binary
// heap must be invisible. This is the per-interleaving wheel≡heap
// differential gate.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 5, 3, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 1}) // same-time pile-up
	f.Add([]byte{0, 9, 2, 0, 3, 40})      // schedule, cancel it, run
	f.Add([]byte{1, 7, 3, 20, 1, 3, 2, 1, 3, 63})
	f.Add([]byte{0, 31, 1, 15, 2, 2, 3, 5, 0, 0, 2, 0, 3, 63, 1, 1, 3, 63})
	f.Fuzz(func(t *testing.T, data []byte) {
		type variant struct {
			label   string
			pooling bool
			kind    SchedulerKind
		}
		variants := []variant{
			{"wheel/pooled", true, SchedWheel},
			{"wheel/plain", false, SchedWheel},
			{"heap/pooled", true, SchedHeap},
			{"heap/plain", false, SchedHeap},
		}
		refTrace, refCancels := fuzzRun(t, data, variants[0].pooling, variants[0].kind)
		for _, v := range variants[1:] {
			trace, cancels := fuzzRun(t, data, v.pooling, v.kind)
			if fmt.Sprint(trace) != fmt.Sprint(refTrace) {
				t.Fatalf("traces diverge between %s and %s:\n%s: %v\n%s: %v",
					variants[0].label, v.label, variants[0].label, refTrace, v.label, trace)
			}
			if fmt.Sprint(cancels) != fmt.Sprint(refCancels) {
				t.Fatalf("cancel outcomes diverge between %s and %s: %v vs %v",
					variants[0].label, v.label, refCancels, cancels)
			}
		}
	})
}
