// Package runner executes registered experiments on a worker pool.
//
// The unit of scheduling is a task: either a whole experiment, or — for
// experiments that decompose (experiments.Spec.Points) — one independent
// series point, such as a single VM count of a scalability sweep or one
// coalescing policy of a sweep. Tasks are sharded across N goroutines;
// every task builds its own testbeds, so every simulation engine lives on
// exactly one goroutine, and every engine is seeded from a stable per-point
// seed (experiments.PointSeed) that depends only on what the task is.
// Figures are assembled from point results in registration order after all
// of an experiment's tasks finish. The result is bit-identical output at
// any parallelism: -parallel 1 and -parallel 8 render the same bytes.
package runner

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures a run.
type Options struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Progress, if non-nil, receives one line per started task ("fig15
	// [30]") and is called from worker goroutines under a lock.
	Progress func(line string)
	// Scheduler selects the event-queue backend every task's engines use
	// (the -sched flag). SchedDefault defers to the process default. The
	// choice must be invisible in the output: figures are byte-identical
	// under wheel and heap at any parallelism.
	Scheduler sim.SchedulerKind
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Figure *report.Figure
	// Wall is the serial-equivalent cost: the summed wall time of the
	// experiment's tasks (not first-start-to-last-end, which depends on
	// what else shared the pool).
	Wall time.Duration
	// Tasks is how many tasks the experiment decomposed into (1 if whole).
	Tasks int
	// Allocs and AllocBytes are the heap allocations the experiment's tasks
	// performed (runtime.MemStats deltas summed over tasks). They are only
	// recorded on serial runs (Parallel == 1), where per-task attribution
	// is exact — Go has no per-goroutine allocation counters — and stay
	// zero otherwise.
	Allocs     uint64
	AllocBytes uint64
	// Err is set if any task or the assembly panicked; Figure is then nil.
	Err error
}

// Summary aggregates one run of a set of experiments.
type Summary struct {
	Results []Result
	// Parallel is the worker count actually used.
	Parallel int
	// Wall is the harness wall-clock for the whole run.
	Wall time.Duration
	// Tasks is the total task count.
	Tasks int
	// TaskWall is the distribution of per-task wall times, in seconds.
	TaskWall stats.Welford
	// Events is the number of simulation events executed during the run
	// (from the engine's process-wide counter; runs sharing a process with
	// other simulation work will overcount).
	Events uint64
	// Obs is the run's merged metrics registry: every point task runs with
	// its own private registry, and they are merged in task order after the
	// pool drains, so the merged contents are byte-identical at any
	// parallelism. Whole (non-decomposed) experiments do not contribute.
	Obs *obs.Registry
}

// Failed lists the results that errored or whose shape checks failed.
func (s *Summary) Failed() []Result {
	var out []Result
	for _, r := range s.Results {
		if r.Err != nil || (r.Figure != nil && !r.Figure.AllChecksPass()) {
			out = append(out, r)
		}
	}
	return out
}

// task is one unit of scheduling.
type task struct {
	idx   int // index into the task list (and taskRegs)
	spec  int // index into specs
	point int // index into Points, or -1 for a whole experiment
}

// Run executes the given experiments on a pool of opts.Parallel workers and
// returns one Result per spec, in input order.
func Run(specs []experiments.Spec, opts Options) *Summary {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	sum := &Summary{Results: make([]Result, len(specs)), Parallel: workers}
	pointRes := make([][]any, len(specs))
	var tasks []task
	for i, s := range specs {
		sum.Results[i] = Result{ID: s.ID, Title: s.Title}
		if s.Parallelizable() {
			pointRes[i] = make([]any, len(s.Points))
			for j := range s.Points {
				tasks = append(tasks, task{idx: len(tasks), spec: i, point: j})
			}
		} else {
			tasks = append(tasks, task{idx: len(tasks), spec: i, point: -1})
		}
	}
	sum.Tasks = len(tasks)
	taskRegs := make([]*obs.Registry, len(tasks))

	start := time.Now()
	eventsBefore := sim.TotalProcessed()

	// mu guards the per-experiment accumulators (Wall, Tasks, Err), the
	// task-wall distribution, and Progress. Point results need no lock:
	// each slot has exactly one writer, and the WaitGroup orders the reads.
	var mu sync.Mutex
	ch := make(chan task)
	var wg sync.WaitGroup
	trackAllocs := workers == 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One event arena per worker goroutine: consecutive points on
			// this worker reuse each other's event storage. Arenas are never
			// shared across goroutines. The arena also carries the scheduler
			// choice down to every engine a task builds on it.
			arena := sim.NewArena()
			arena.SetScheduler(opts.Scheduler)
			for t := range ch {
				runTask(specs, t, pointRes, taskRegs, sum, &mu, opts.Progress, arena, trackAllocs)
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()

	// Merge the per-task registries in task order — counters and histogram
	// buckets are sums, but gauge overwrites and float arithmetic are
	// order-sensitive, so a fixed order keeps metrics output deterministic.
	sum.Obs = obs.NewRegistry()
	for _, reg := range taskRegs {
		sum.Obs.Merge(reg)
	}

	// Assemble decomposed figures in input order, on this goroutine.
	for i, s := range specs {
		r := &sum.Results[i]
		if r.Err != nil || !s.Parallelizable() {
			continue
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					r.Err = fmt.Errorf("%s: assembly panicked: %v", s.ID, p)
					r.Figure = nil
				}
			}()
			r.Figure = s.Build(pointRes[i])
		}()
	}

	sum.Wall = time.Since(start)
	sum.Events = sim.TotalProcessed() - eventsBefore
	return sum
}

// RunAll runs every registered experiment.
func RunAll(opts Options) *Summary { return Run(experiments.All(), opts) }

// RunIDs runs the named experiments (sorted, deduplicated). Unknown ids
// return an error.
func RunIDs(ids []string, opts Options) (*Summary, error) {
	seen := map[string]bool{}
	var specs []experiments.Spec
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		s, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("runner: unknown experiment %q", id)
		}
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return Run(specs, opts), nil
}

// runTask executes one task with panic isolation: a panicking point marks
// its experiment failed but never takes down the pool or the other
// experiments.
func runTask(specs []experiments.Spec, t task, pointRes [][]any, taskRegs []*obs.Registry, sum *Summary, mu *sync.Mutex, progress func(string), arena *sim.Arena, trackAllocs bool) {
	s := specs[t.spec]
	label := s.ID
	if t.point >= 0 {
		label = fmt.Sprintf("%s [%s]", s.ID, s.Points[t.point].Label)
	}
	if progress != nil {
		mu.Lock()
		progress(label)
		mu.Unlock()
	}
	var m0 runtime.MemStats
	if trackAllocs {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	defer func() {
		wall := time.Since(start)
		p := recover()
		var allocs, allocBytes uint64
		if trackAllocs {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			allocs, allocBytes = m1.Mallocs-m0.Mallocs, m1.TotalAlloc-m0.TotalAlloc
		}
		mu.Lock()
		r := &sum.Results[t.spec]
		r.Wall += wall
		r.Tasks++
		r.Allocs += allocs
		r.AllocBytes += allocBytes
		sum.TaskWall.Observe(wall.Seconds())
		if p != nil && r.Err == nil {
			r.Err = fmt.Errorf("%s: panic: %v", label, p)
		}
		mu.Unlock()
	}()
	if t.point < 0 {
		fig := s.Run()
		mu.Lock()
		sum.Results[t.spec].Figure = fig
		mu.Unlock()
		return
	}
	p := s.Points[t.point]
	// The point gets a private registry (slot has one writer; the
	// WaitGroup orders the merge's reads).
	reg := obs.NewRegistry()
	taskRegs[t.idx] = reg
	pointRes[t.spec][t.point] = p.Run(experiments.PointSeed(s.ID, p.Label), reg, arena)
}
