package runner

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

// TestFastpathPacketEquivalence is the packet≡flow differential gate at the
// runner level: uncongested Clos ring figures must render byte-identically
// with the flow fast-path forced on and forced off, at every parallelism.
// The specs share IDs, labels, and seeds across modes and publish only
// drain-total ledgers, so any divergence means the fluid model created,
// destroyed, or re-timed bytes relative to the packet model.
func TestFastpathPacketEquivalence(t *testing.T) {
	hostCounts := []int{4, 8, 16}
	if testing.Short() || raceEnabled {
		hostCounts = []int{4, 8}
	}
	specs := func(mode cluster.FastpathMode) []experiments.Spec {
		var out []experiments.Spec
		for _, h := range hostCounts {
			out = append(out, experiments.ClosRingSpec(h, 4, mode))
		}
		return out
	}
	for _, parallel := range []int{1, 4, 8} {
		var md, csv [2]string
		for i, mode := range []cluster.FastpathMode{cluster.FastpathOn, cluster.FastpathOff} {
			s := Run(specs(mode), Options{Parallel: parallel})
			md[i] = suiteMarkdown(t, s)
			var c strings.Builder
			for _, r := range s.Results {
				c.WriteString(r.Figure.CSV())
			}
			csv[i] = c.String()
		}
		if md[0] != md[1] {
			t.Fatalf("fast-path on and off figures differ at -parallel %d; first differing line:\n%s",
				parallel, firstDiffLine(md[0], md[1]))
		}
		if csv[0] != csv[1] {
			t.Fatalf("fast-path on and off CSVs differ at -parallel %d:\n%s",
				parallel, firstDiffLine(csv[0], csv[1]))
		}
	}
}
