//go:build race

package runner

// raceEnabled trims the determinism test to the fast subset under the race
// detector: the full suite twice at ~10x race overhead would flirt with the
// package test timeout, and the subset exercises the same pool machinery.
const raceEnabled = true
