package runner

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

// suiteMarkdown renders a run the way sriovsim -all does: every figure's
// markdown, in order. Byte equality of this string is the determinism
// invariant.
func suiteMarkdown(t *testing.T, s *Summary) string {
	t.Helper()
	var b strings.Builder
	for _, r := range s.Results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		b.WriteString(r.Figure.Markdown())
	}
	return b.String()
}

// determinismIDs picks the suite for the parallel-vs-serial comparison: a
// fast subset under -short or the race detector, everything otherwise.
func determinismIDs(t *testing.T) []string {
	if testing.Short() || raceEnabled {
		return []string{"fig07", "fig08", "fig09", "fig10", "fig20", "fig21"}
	}
	var ids []string
	for _, s := range experiments.All() {
		ids = append(ids, s.ID)
	}
	return ids
}

// TestDeterminismAcrossParallelism asserts the tentpole invariant: the full
// experiment suite renders byte-identical figures at -parallel 1 and
// -parallel 8. (The scale sweeps memoize across runs, which only makes the
// comparison stricter for everything not memoized.)
func TestDeterminismAcrossParallelism(t *testing.T) {
	ids := determinismIDs(t)
	s1, err := RunIDs(ids, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := RunIDs(ids, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	md1, md8 := suiteMarkdown(t, s1), suiteMarkdown(t, s8)
	if md1 != md8 {
		line := firstDiffLine(md1, md8)
		t.Fatalf("suite output differs between -parallel 1 and -parallel 8; first differing line:\n%s", line)
	}
	if s1.Tasks != s8.Tasks {
		t.Fatalf("task counts differ: %d vs %d", s1.Tasks, s8.Tasks)
	}

	// The allocation claim underneath the pooled hot path, pinned where the
	// arenas are owned: once a worker's arena has warmed up, a steady-state
	// schedule→fire→recycle round trip heap-allocates nothing at all.
	if raceEnabled {
		return // AllocsPerRun is meaningless under the race detector's shadow allocations
	}
	eng := sim.NewEngineArena(1, sim.NewArena())
	fired := 0
	tick := func() { fired++ }
	for i := 0; i < 64; i++ {
		eng.After(1, "runner:warm", tick)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		eng.After(1, "runner:steady", tick)
		eng.Run()
	}); avg != 0 {
		t.Fatalf("steady-state schedule→fire→recycle allocates %.1f allocs/op, want 0", avg)
	}
}

// TestSchedulerDifferentialAcrossParallelism is the runner-level wheel≡heap
// gate: the same experiment subset must render byte-identical figures under
// the timer-wheel and binary-heap schedulers, at serial and sharded
// parallelism. The scheduler is pure mechanism — any divergence means event
// ordering leaked through it.
func TestSchedulerDifferentialAcrossParallelism(t *testing.T) {
	ids := []string{"fig07", "fig08", "fig09", "fig10", "fig20", "fig21"}
	if testing.Short() || raceEnabled {
		ids = []string{"fig07", "fig20"}
	}
	for _, parallel := range []int{1, 4} {
		var md [2]string
		for i, kind := range []sim.SchedulerKind{sim.SchedWheel, sim.SchedHeap} {
			s, err := RunIDs(ids, Options{Parallel: parallel, Scheduler: kind})
			if err != nil {
				t.Fatal(err)
			}
			md[i] = suiteMarkdown(t, s)
		}
		if md[0] != md[1] {
			line := firstDiffLine(md[0], md[1])
			t.Fatalf("wheel and heap figures differ at -parallel %d; first differing line:\n%s", parallel, line)
		}
	}
}

// TestClusterFiguresDeterministicAcrossParallelism pins the cluster
// experiment family (multi-host fabric, inter-host migration) to the same
// invariant at three parallelism levels, and additionally requires the
// merged metrics registries — the source of the BENCH fabric/migration
// totals — to serialize identically.
func TestClusterFiguresDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("cluster figures are slow; covered unabridged in the full run")
	}
	ids := []string{"fig22", "fig23"}
	var md, reg []string
	for _, p := range []int{1, 4, 8} {
		s, err := RunIDs(ids, Options{Parallel: p})
		if err != nil {
			t.Fatal(err)
		}
		md = append(md, suiteMarkdown(t, s))
		var buf bytes.Buffer
		if err := s.Obs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		reg = append(reg, buf.String())
	}
	for i := 1; i < len(md); i++ {
		if md[i] != md[0] {
			t.Fatalf("cluster figures differ between -parallel 1 and -parallel %d:\n%s",
				[]int{1, 4, 8}[i], firstDiffLine(md[0], md[i]))
		}
		if reg[i] != reg[0] {
			t.Fatalf("merged cluster metrics differ between -parallel 1 and -parallel %d",
				[]int{1, 4, 8}[i])
		}
	}
}

// TestCtlFiguresDeterministicAcrossParallelism pins the control-plane
// experiment family (fig28 placement policies, fig29 reconcile-under-chaos)
// at -parallel 1/4/8: byte-identical markdown, byte-identical CSV (the
// artifact EXPERIMENTS.md publishes), and byte-identical merged metrics
// registries — the source of the BENCH placement_churn /
// ctl_p99_downtime_us totals.
func TestCtlFiguresDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("control-plane figures are slow; covered unabridged in the full run")
	}
	ids := []string{"fig28", "fig29"}
	levels := []int{1, 4, 8}
	var md, csv, reg []string
	for _, p := range levels {
		s, err := RunIDs(ids, Options{Parallel: p})
		if err != nil {
			t.Fatal(err)
		}
		md = append(md, suiteMarkdown(t, s))
		var c strings.Builder
		for _, r := range s.Results {
			c.WriteString(r.Figure.CSV())
		}
		csv = append(csv, c.String())
		var buf bytes.Buffer
		if err := s.Obs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		reg = append(reg, buf.String())
	}
	for i := 1; i < len(md); i++ {
		if md[i] != md[0] {
			t.Fatalf("control-plane figures differ between -parallel 1 and -parallel %d:\n%s",
				levels[i], firstDiffLine(md[0], md[i]))
		}
		if csv[i] != csv[0] {
			t.Fatalf("control-plane CSVs differ between -parallel 1 and -parallel %d:\n%s",
				levels[i], firstDiffLine(csv[0], csv[i]))
		}
		if reg[i] != reg[0] {
			t.Fatalf("merged control-plane metrics differ between -parallel 1 and -parallel %d",
				levels[i])
		}
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "p1: " + al[i] + "\np8: " + bl[i]
		}
	}
	return "(outputs are prefixes of each other)"
}

// TestResultsInInputOrderAndCounted checks ordering, task accounting, and
// the wall/events bookkeeping on a small mixed run (decomposed fig08 +
// whole-experiment fig20).
func TestResultsInInputOrderAndCounted(t *testing.T) {
	s, err := RunIDs([]string{"fig20", "fig08"}, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 || s.Results[0].ID != "fig08" || s.Results[1].ID != "fig20" {
		t.Fatalf("unexpected result order: %+v", s.Results)
	}
	fig08, ok := experiments.ByID("fig08")
	if !ok || !fig08.Parallelizable() {
		t.Fatal("fig08 should be decomposed")
	}
	if got := s.Results[0].Tasks; got != len(fig08.Points) {
		t.Fatalf("fig08 ran as %d tasks, want %d", got, len(fig08.Points))
	}
	if s.Results[1].Tasks != 1 {
		t.Fatalf("fig20 ran as %d tasks, want 1", s.Results[1].Tasks)
	}
	if s.Events == 0 {
		t.Fatal("no simulation events recorded")
	}
	if s.TaskWall.N() != int64(s.Tasks) {
		t.Fatalf("task-wall samples %d != tasks %d", s.TaskWall.N(), s.Tasks)
	}
	for _, r := range s.Results {
		if r.Wall <= 0 {
			t.Fatalf("%s has no wall time", r.ID)
		}
	}
}

// TestPanicIsolation: a panicking point fails its own experiment and leaves
// the rest of the pool running.
func TestPanicIsolation(t *testing.T) {
	specs := []experiments.Spec{
		{
			ID: "boom", Title: "panics",
			Points: []experiments.Point{
				{Label: "a", Run: func(uint64, *obs.Registry, *sim.Arena) any { return 1 }},
				{Label: "b", Run: func(uint64, *obs.Registry, *sim.Arena) any { panic("kaboom") }},
			},
			Build: func([]any) *report.Figure { return &report.Figure{ID: "boom"} },
		},
		{
			ID: "fine", Title: "works",
			Run: func() *report.Figure { return &report.Figure{ID: "fine", Title: "ok"} },
		},
	}
	s := Run(specs, Options{Parallel: 2})
	if s.Results[0].Err == nil || s.Results[0].Figure != nil {
		t.Fatalf("panicking experiment not failed: %+v", s.Results[0])
	}
	if !strings.Contains(s.Results[0].Err.Error(), "kaboom") {
		t.Fatalf("panic message lost: %v", s.Results[0].Err)
	}
	if s.Results[1].Err != nil || s.Results[1].Figure == nil {
		t.Fatalf("healthy experiment affected: %+v", s.Results[1])
	}
	if len(s.Failed()) != 1 {
		t.Fatalf("Failed() = %d entries, want 1", len(s.Failed()))
	}
}

// TestUnknownID rejects bad ids.
func TestUnknownID(t *testing.T) {
	if _, err := RunIDs([]string{"fig99"}, Options{}); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// TestPointLabelsUnique guards the seed derivation: within an experiment,
// labels must be unique or two points would share an engine seed.
func TestPointLabelsUnique(t *testing.T) {
	for _, s := range experiments.All() {
		seen := map[string]bool{}
		for _, p := range s.Points {
			if seen[p.Label] {
				t.Errorf("%s: duplicate point label %q", s.ID, p.Label)
			}
			seen[p.Label] = true
		}
	}
}
