package chaos

import (
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// ProbePeriod is the SLO tracker's sampling bucket: recovery times are
// measured at this granularity, availability is the fraction of healthy
// buckets.
const ProbePeriod = 10 * units.Millisecond

// MTTRBounds are the recovery-latency histogram buckets: detection and
// failover live in the tens-of-milliseconds decade, watchdog FLR recovery
// around a second — far above the packet-path DefaultLatencyBounds.
func MTTRBounds() []units.Duration {
	ms := units.Millisecond
	return []units.Duration{
		1 * ms, 2 * ms, 5 * ms, 10 * ms, 20 * ms, 50 * ms,
		100 * ms, 200 * ms, 500 * ms,
		units.Second, 2 * units.Second, 5 * units.Second,
	}
}

// SLO measures recovery service levels during a fault campaign. It probes
// a caller-supplied cumulative delivered-packet counter every ProbePeriod;
// a bucket is healthy when it carried at least healthyFrac of nominal.
// Each injected fault opens an outage; the first healthy bucket that
// starts after the injection closes all open outages, and the
// injection→recovery gap lands in the per-kind MTTR histogram
// (chaos.mttr.<kind>) and the chaos.mttr_us total.
type SLO struct {
	eng       *sim.Engine
	reg       *obs.Registry
	probe     func() int64
	perBucket float64 // nominal packets per bucket
	frac      float64

	tick *sim.Ticker
	last int64
	open []outage

	total, healthy, recovered int64
}

type outage struct {
	kind fault.Kind
	at   units.Time
}

// Report is an SLO tracker's summary.
type Report struct {
	// Availability is the fraction of probe buckets that carried healthy
	// traffic (1.0 on a fault-free run).
	Availability float64
	// Recoveries counts outages closed by a healthy bucket; Unrecovered
	// counts outages still open at Finish.
	Recoveries  int64
	Unrecovered int64
}

// NewSLO starts a tracker on the engine. nominalPPS is the expected
// fault-free delivery rate for whatever probe counts; probe returns the
// cumulative delivered packets (it is called once per ProbePeriod).
func NewSLO(eng *sim.Engine, reg *obs.Registry, nominalPPS float64, probe func() int64) *SLO {
	s := &SLO{
		eng: eng, reg: reg, probe: probe,
		perBucket: nominalPPS * ProbePeriod.Seconds(),
		frac:      0.5,
	}
	s.tick = sim.NewTicker(eng, ProbePeriod, "chaos:slo", s.sample)
	return s
}

// SetHealthyFraction overrides the healthy-bucket threshold (default 0.5
// of nominal). Aggregate probes spanning several failure domains want it
// higher, so losing one domain still reads as an outage.
func (s *SLO) SetHealthyFraction(f float64) { s.frac = f }

// Attach hooks the tracker to the injector: every applied scenario opens
// an outage stamped with its kind and injection time.
func (s *SLO) Attach(inj *fault.Injector) {
	inj.OnInject = func(sc fault.Scenario) {
		s.open = append(s.open, outage{sc.Kind, s.eng.Now()})
	}
}

func (s *SLO) sample(now units.Time) {
	cur := s.probe()
	delta := cur - s.last
	s.last = cur
	s.total++
	if float64(delta) < s.perBucket*s.frac {
		return
	}
	s.healthy++
	if len(s.open) == 0 {
		return
	}
	// Close only outages that have seen at least one full bucket: a fault
	// landing late in a mostly-healthy bucket hasn't shown its damage yet.
	keep := s.open[:0]
	for _, o := range s.open {
		if now.Sub(o.at) < ProbePeriod {
			keep = append(keep, o)
			continue
		}
		d := now.Sub(o.at)
		s.reg.Histogram("chaos.mttr."+o.kind.String(), MTTRBounds()...).Observe(d)
		s.reg.Counter("chaos.mttr_us").Add(int64(d / units.Microsecond))
		s.reg.Counter("chaos.recoveries").Inc()
		s.recovered++
	}
	s.open = keep
}

// Finish stops probing, counts outages that never recovered, and reports
// availability. The headline counters are registered even on a clean run,
// so a zero is an explicit zero in merged metrics.
func (s *SLO) Finish() Report {
	s.tick.Stop()
	s.reg.Counter("chaos.unrecovered").Add(int64(len(s.open)))
	rep := Report{
		Recoveries:  s.recovered,
		Unrecovered: int64(len(s.open)),
	}
	s.reg.Counter("chaos.mttr_us")
	if s.total > 0 {
		rep.Availability = float64(s.healthy) / float64(s.total)
	}
	s.open = nil
	return rep
}

// MTTR returns the per-kind recovery histogram (nil before any recovery
// of that kind).
func (s *SLO) MTTR(k fault.Kind) *obs.Hist {
	return s.reg.FindHistogram("chaos.mttr." + k.String())
}
