package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/units"
)

// ClosDrainBound caps how long AuditClos will run the engine waiting for a
// stopped fabric to drain. A Clos batch traverses at most four store-and-
// forward hops, so anything still in flight this long after StopAll is a
// leak, not a slow path.
const ClosDrainBound = 5 * units.Second

// AuditClos stops every flow, drains the fabric, and returns every violated
// invariant: per-flow packet conservation across promote/demote transitions
// (injected == delivered + dropped, exactly — the fluid fast-path must not
// create or destroy packets when flows move between the packet and fluid
// regimes), resequencer emptiness (no batch parked forever), empty queues,
// and event-pool integrity. It advances simulated time, so call it after
// measurement.
func AuditClos(c *cluster.Clos) []Violation {
	var vs []Violation
	c.StopAll()
	if !c.Drain(ClosDrainBound) {
		vs = append(vs, Violation{"clos-drain", "fabric",
			fmt.Sprintf("%d packets still in flight %v after StopAll",
				c.InFlightPackets(), ClosDrainBound)})
	}
	for _, f := range c.Flows() {
		if n := f.InFlight(); n != 0 {
			vs = append(vs, Violation{"clos-conservation", fmt.Sprintf("flow[%d]", f.ID),
				fmt.Sprintf("injected=%d but delivered=%d + dropped=%d",
					f.Injected(), f.Delivered(), f.Dropped())})
		}
	}
	if n := c.ReorderViolations(); n != 0 {
		vs = append(vs, Violation{"clos-resequencer", "fabric",
			fmt.Sprintf("%d batches still parked after drain", n)})
	}
	if q := c.QueuedBytes(); q != 0 {
		vs = append(vs, Violation{"clos-queue-drain", "fabric",
			fmt.Sprintf("%v still queued after drain", q)})
	}
	checkArena(&vs, c.Eng)
	return vs
}
