package chaos_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vmm"
)

// FuzzChaosCampaign decodes a campaign config from raw bytes, plans it
// twice to prove determinism, validates every scenario, then arms and
// runs it on a real testbed and audits the invariants. The encoding is
// deliberately hand-writable so the committed corpus stays readable:
//
//	[0:8]  seed (little-endian)
//	[8]    ports        → clamped to 1..4
//	[9]    VFs per port → clamped to 0..7
//	[10:12] storm-window end, ms (little-endian) → clamped to 1..500
//	[12]   storm rate ×10 (faults/s)             → clamped to 0..99
//	[13]   cascade probability ×100              → clamped to 0..100
//
// Short inputs fall back to defaults for the missing tail.
func FuzzChaosCampaign(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{42, 0, 0, 0, 0, 0, 0, 0, 2, 7, 0xf4, 0x01, 20, 30})
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 1, 0, 50, 0, 99, 100})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 4, 3, 0x2c, 0x01, 5, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := make([]byte, 14)
		copy(buf, data)
		seed := binary.LittleEndian.Uint64(buf[0:8])
		ports := clamp(int(buf[8]), 1, 4)
		vfs := clamp(int(buf[9]), 0, 7)
		endMs := clamp(int(binary.LittleEndian.Uint16(buf[10:12])), 1, 500)
		rate := float64(clamp(int(buf[12]), 0, 99)) / 10
		casc := float64(clamp(int(buf[13]), 0, 100)) / 100

		cfg := chaos.Config{
			Name:  "fuzz",
			Start: units.Time(100 * units.Millisecond),
			End:   units.Time(100*units.Millisecond + units.Duration(endMs)*units.Millisecond),
			Ports: ports, VFsPerPort: vfs,
			StormRate:   rate,
			CascadeProb: casc, CascadeDelay: 10 * units.Millisecond,
		}
		a := chaos.Plan(sim.NewEngine(seed), cfg)
		b := chaos.Plan(sim.NewEngine(seed), cfg)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatal("plan not deterministic for identical seed and config")
		}
		var prev units.Time
		for _, s := range a {
			if s.At < cfg.Start || s.At >= cfg.End {
				t.Fatalf("%s at %v outside [%v, %v)", s.Kind, s.At, cfg.Start, cfg.End)
			}
			if s.At < prev {
				t.Fatal("plan not sorted")
			}
			prev = s.At
			if s.Port < 0 || s.Port >= ports || s.VF < 0 || (vfs > 0 && s.VF >= vfs) {
				t.Fatalf("%s targets port %d VF %d outside %d×%d", s.Kind, s.Port, s.VF, ports, vfs)
			}
		}

		tb := core.NewTestbed(core.Config{Seed: seed, Ports: ports, Opts: vmm.AllOptimizations})
		inj := fault.NewInjector(tb.Eng, nil)
		for i := range tb.Ports {
			inj.Watch(tb.Ports[i], tb.PFs[i])
		}
		if err := chaos.Arm(inj, a); err != nil {
			t.Fatalf("planned campaign failed to arm: %v", err)
		}
		tb.Eng.RunUntil(cfg.End.Add(1500 * units.Millisecond))
		tb.StopAll()
		if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
			t.Fatalf("campaign violated invariants: %v", vs)
		}
	})
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
