package chaos_test

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/migration"
	"repro/internal/obs"
	"repro/internal/units"
)

func violationNames(vs []chaos.Violation) []string {
	var names []string
	for _, v := range vs {
		names = append(names, v.Invariant)
	}
	return names
}

func hasViolation(vs []chaos.Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func TestCleanRunHasNoViolations(t *testing.T) {
	tb, _, _ := chaosRig(t, 42)
	tb.Eng.RunUntil(units.Time(units.Second))
	tb.StopAll()
	if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
		t.Fatalf("clean run violated invariants: %v", vs)
	}
}

// TestAuditSurvivesFaultStorm is the tentpole integration check: a dense
// randomized storm of every fault kind, with cascades, must leave every
// conservation and liveness invariant intact once recovery has run.
func TestAuditSurvivesFaultStorm(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		tb, _, inj := chaosRig(t, seed)
		cfg := chaos.Config{
			Name:  "storm-test",
			Start: units.Time(500 * units.Millisecond), End: units.Time(4 * units.Second),
			Ports: 2, VFsPerPort: 7, StormRate: 3,
			CascadeProb: 0.3, CascadeDelay: 50 * units.Millisecond,
		}
		plan := chaos.Plan(tb.Eng, cfg)
		if err := chaos.Arm(inj, plan); err != nil {
			t.Fatal(err)
		}
		tb.Eng.RunUntil(cfg.End)
		tb.StopAll()
		if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
			t.Fatalf("seed %d: storm of %d faults violated invariants: %v", seed, len(plan), vs)
		}
	}
}

// TestTamperedCountersDetected proves the checker actually distinguishes:
// breaking each conservation identity by hand must surface exactly that
// invariant.
func TestTamperedCountersDetected(t *testing.T) {
	tb, g, _ := chaosRig(t, 42)
	tb.Eng.RunUntil(units.Time(500 * units.Millisecond))
	tb.StopAll()
	if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
		t.Fatalf("pre-tamper violations: %v", vs)
	}

	q := g.VF.Queue()
	q.Stats.RxPackets += 3
	tb.Netback.Received += 5
	tb.Ports[0].PFQueue().Stats.SpuriousIntr++
	vs := chaos.CheckTestbed(tb)
	for _, want := range []string{"ring-conservation", "backend-conservation", "interrupt-liveness"} {
		if !hasViolation(vs, want) {
			t.Errorf("tampered %s not detected; got %v", want, violationNames(vs))
		}
	}
	// Undo and confirm the checker goes quiet again.
	q.Stats.RxPackets -= 3
	tb.Netback.Received -= 5
	tb.Ports[0].PFQueue().Stats.SpuriousIntr--
	if vs := chaos.CheckTestbed(tb); len(vs) != 0 {
		t.Fatalf("violations after restoring counters: %v", vs)
	}
}

func TestRecordFeedsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	chaos.Record(reg, nil)
	if got := reg.Counter("chaos.invariant_violations").Value(); got != 0 {
		t.Fatalf("clean record = %d, want explicit 0", got)
	}
	chaos.Record(reg, []chaos.Violation{
		{Invariant: "ring-conservation", Where: "eth0/vf0"},
		{Invariant: "ring-conservation", Where: "eth0/vf1"},
		{Invariant: "pool-integrity", Where: "sim.Arena"},
	})
	if got := reg.Counter("chaos.invariant_violations").Value(); got != 3 {
		t.Fatalf("total = %d, want 3", got)
	}
	if got := reg.Counter("chaos.violations.ring-conservation").Value(); got != 2 {
		t.Fatalf("ring-conservation = %d, want 2", got)
	}
}

func TestMigrationTerminationChecks(t *testing.T) {
	hung := &cluster.Migration{}
	vs := chaos.CheckMigrations([]*cluster.Migration{hung})
	if !hasViolation(vs, "migration-termination") {
		t.Fatal("result-less migration not flagged")
	}
	if !strings.Contains(vs[0].Detail, "neither completed nor aborted") {
		t.Fatalf("detail %q does not explain the hang", vs[0].Detail)
	}

	aborted := &cluster.Migration{Result: &migration.Result{Err: errFake{}}}
	if vs := chaos.CheckMigrations([]*cluster.Migration{aborted}); len(vs) != 0 {
		t.Fatalf("clean abort flagged: %v", vs)
	}

	incoherent := &cluster.Migration{Result: &migration.Result{
		DowntimeStart: units.Time(2 * units.Second),
		DowntimeEnd:   units.Time(units.Second),
	}}
	if vs := chaos.CheckMigrations([]*cluster.Migration{incoherent}); !hasViolation(vs, "migration-termination") {
		t.Fatal("inverted downtime window not flagged")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake abort" }
