package chaos_test

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/migration"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/units"
	"repro/internal/vmm"
)

// Satellite: the fault-during-migration matrix. A fault (surprise removal
// of the destination VF, or a source-side mailbox drop window) lands in
// each migration phase — pre-copy, stop-and-copy, restore, hot-add — and
// every cell must terminate cleanly (complete, possibly degraded, or
// abort) with zero invariant violations. A clean reference run provides
// the phase timestamps.

const matrixHorizon = 30 * units.Second

// matrixRun builds the fig23-shaped rig (bonded guest on host 0, netperf
// peer streaming to it from host 1), starts the migration at the model
// time, optionally arms fault scenarios, and runs to the horizon.
func matrixRun(t *testing.T, scenarios []fault.Scenario) (*cluster.Cluster, *cluster.Migration) {
	t.Helper()
	c := cluster.New(cluster.Config{
		Hosts: 2, Seed: 42,
		Host: core.Config{Opts: vmm.AllOptimizations, NetbackThreads: 2,
			GuestMemory: model.GuestMemory / 4},
	})
	h0, h1 := c.Host(0), c.Host(1)
	vm, err := h0.Bed.AddBondedGuest("vm", vmm.HVM, vmm.Kernel2628, 0, 0, netstack.FixedITR(2000))
	if err != nil {
		t.Fatal(err)
	}
	h0.Connect(vm)
	peer, err := h1.Bed.AddSRIOVGuest("peer", vmm.HVM, vmm.Kernel2628, 0, 0, netstack.FixedITR(2000))
	if err != nil {
		t.Fatal(err)
	}
	h1.Connect(peer)
	if _, err := c.StartFlow(h1, peer, h0, vm, model.LineRateUDP/2); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(c.Eng, nil)
	inj.Watch(h0.Bed.Ports[0], h0.Bed.PFs[0]) // port 0: migration source
	inj.Watch(h1.Bed.Ports[0], h1.Bed.PFs[0]) // port 1: migration target
	if err := chaos.Arm(inj, scenarios); err != nil {
		t.Fatal(err)
	}

	var mig *cluster.Migration
	c.Eng.At(units.Time(model.MigrationStart), "test:migrate", func() {
		m, err := c.MigrateDNIS(cluster.MigrationSpec{
			Src: h0, Guest: vm, Dst: h1, DstPort: 0, DstVF: 2,
			Policy: netstack.FixedITR(2000),
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		mig = m
	})
	c.Eng.RunUntil(units.Time(matrixHorizon))
	c.StopAll()
	return c, mig
}

func TestFaultDuringMigrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("migration matrix is long in simulated time")
	}

	// Reference run: no faults. Its result anchors the phase times every
	// fault cell reuses (same seed, so timing matches until the fault
	// perturbs it).
	c, ref := matrixRun(t, nil)
	if ref == nil || ref.Result == nil {
		t.Fatal("reference migration did not terminate")
	}
	if ref.Result.Err != nil {
		t.Fatalf("reference migration failed: %v", ref.Result.Err)
	}
	if vs := chaos.AuditCluster(c, []*cluster.Migration{ref}); len(vs) != 0 {
		t.Fatalf("reference run violated invariants: %v", vs)
	}
	r := ref.Result
	if r.HotAddDone == 0 || r.HotAddDone >= units.Time(matrixHorizon-2*units.Second) {
		t.Fatalf("reference hot-add at %v leaves no room in the horizon", r.HotAddDone)
	}

	phases := []struct {
		name string
		at   units.Time
	}{
		{"pre-copy", r.Start.Add(r.DowntimeStart.Sub(r.Start) / 2)},
		{"stop-and-copy", r.DowntimeStart.Add(r.DowntimeEnd.Sub(r.DowntimeStart) / 2)},
		{"restore", r.DowntimeEnd.Add(-5 * units.Millisecond)},
		{"hot-add", r.DowntimeEnd.Add(units.Microsecond)},
	}
	faults := []struct {
		name string
		mk   func(at units.Time) fault.Scenario
	}{
		{"vf-remove-dst", func(at units.Time) fault.Scenario {
			// Yank the destination VF the hot add-on will want (port index
			// 1 in the injector's watch order, VF 2 = DstVF).
			return fault.Scenario{At: at, Kind: fault.SurpriseRemoveVF, Port: 1, VF: 2,
				Duration: units.Second}
		}},
		{"mbox-drop-src", func(at units.Time) fault.Scenario {
			return fault.Scenario{At: at, Kind: fault.MailboxDrop, Port: 0,
				Duration: 3 * units.Millisecond}
		}},
	}

	for _, ph := range phases {
		for _, fc := range faults {
			t.Run(fc.name+"@"+ph.name, func(t *testing.T) {
				c, mig := matrixRun(t, []fault.Scenario{fc.mk(ph.at)})
				if mig == nil || mig.Result == nil {
					t.Fatal("migration neither completed nor aborted")
				}
				assertCleanTerminal(t, c, mig)
				if vs := chaos.AuditCluster(c, []*cluster.Migration{mig}); len(vs) != 0 {
					t.Fatalf("invariants violated: %v", vs)
				}
			})
		}
	}

	// Two correlated presets ride the same matrix: a link flap on the
	// migration-carrying uplink mid-pre-copy (chunks must survive on
	// retransmissions), and the destination VF vanishing mid-pre-copy but
	// returning in reset before the hot add-on.
	t.Run("link-flap@pre-copy", func(t *testing.T) {
		c, mig := matrixRun(t, chaos.LinkFlapDuringMigration(r.Start, 0))
		if mig == nil || mig.Result == nil {
			t.Fatal("migration neither completed nor aborted")
		}
		assertCleanTerminal(t, c, mig)
		if mig.Result.Err == nil && c.MigrationRetries() == 0 {
			t.Error("a flap on the migration uplink should cost at least one chunk retransmission")
		}
		if vs := chaos.AuditCluster(c, []*cluster.Migration{mig}); len(vs) != 0 {
			t.Fatalf("invariants violated: %v", vs)
		}
	})
	t.Run("vf-remove@mid-pre-copy-returns", func(t *testing.T) {
		c, mig := matrixRun(t, chaos.SurpriseRemoveMidPrecopy(r.Start, 1, 2, 500*units.Millisecond))
		if mig == nil || mig.Result == nil {
			t.Fatal("migration neither completed nor aborted")
		}
		assertCleanTerminal(t, c, mig)
		if vs := chaos.AuditCluster(c, []*cluster.Migration{mig}); len(vs) != 0 {
			t.Fatalf("invariants violated: %v", vs)
		}
	})
}

// assertCleanTerminal checks the abort-or-complete contract: a completed
// migration restored a live target guest (possibly PV-only, if the hot
// add-on found its VF gone); an aborted one left a coherent error.
func assertCleanTerminal(t *testing.T, c *cluster.Cluster, mig *cluster.Migration) {
	t.Helper()
	res := mig.Result
	if res.Err != nil {
		t.Logf("clean abort: %v", res.Err)
		return
	}
	if mig.Target == nil {
		t.Fatal("completed migration has no target guest")
	}
	if res.Downtime() <= 0 {
		t.Fatalf("completed migration downtime = %v", res.Downtime())
	}
	degraded := c.Obs.Counter("cluster.migration.hot_add_failures").Value()
	if mig.Target.Bond == nil && degraded == 0 {
		t.Fatal("target has no bond but no degraded hot-add was recorded")
	}
	t.Log(summary(res, degraded))
}

func summary(r *migration.Result, degraded int64) string {
	return fmt.Sprintf("completed: downtime=%v total=%v hot_add_failures=%d",
		r.Downtime(), r.TotalDuration(), degraded)
}
