package chaos_test

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/units"
)

func TestSLOMeasuresLinkFlapRecovery(t *testing.T) {
	tb, g, inj := chaosRig(t, 42)
	reg := obs.NewRegistry()
	nominal := model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(tb.Eng, reg, nominal, func() int64 { return g.Recv.Stats.AppPackets })
	slo.Attach(inj)

	inj.MustSchedule(fault.Scenario{
		At: units.Time(units.Second), Kind: fault.LinkFlap, Port: 0,
		Duration: 300 * units.Millisecond,
	})
	tb.Eng.RunUntil(units.Time(3 * units.Second))
	rep := slo.Finish()
	tb.StopAll()

	if rep.Recoveries != 1 || rep.Unrecovered != 0 {
		t.Fatalf("recoveries=%d unrecovered=%d, want 1/0", rep.Recoveries, rep.Unrecovered)
	}
	h := slo.MTTR(fault.LinkFlap)
	if h.Count() != 1 {
		t.Fatalf("MTTR observations = %d, want 1", h.Count())
	}
	// Recovery is detection (≤ one miimon period) + the failover outage
	// window; well under the flap duration itself thanks to the standby.
	mttr := h.Max()
	if mttr < 50*units.Millisecond || mttr > 500*units.Millisecond {
		t.Fatalf("MTTR = %v, want failover-bounded (50–500 ms)", mttr)
	}
	if us := reg.Counter("chaos.mttr_us").Value(); us != int64(mttr/units.Microsecond) {
		t.Fatalf("chaos.mttr_us = %d, want %d", us, int64(mttr/units.Microsecond))
	}
	if rep.Availability <= 0.8 || rep.Availability >= 1.0 {
		t.Fatalf("availability = %.3f, want in (0.8, 1.0): one bounded outage over 3 s", rep.Availability)
	}
}

func TestSLOCleanRunIsFullyAvailable(t *testing.T) {
	tb, g, inj := chaosRig(t, 42)
	reg := obs.NewRegistry()
	nominal := model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(tb.Eng, reg, nominal, func() int64 { return g.Recv.Stats.AppPackets })
	slo.Attach(inj)
	tb.Eng.RunUntil(units.Time(2 * units.Second))
	rep := slo.Finish()
	tb.StopAll()
	if rep.Availability < 0.99 {
		t.Fatalf("availability = %.3f on a fault-free run", rep.Availability)
	}
	if rep.Recoveries != 0 || rep.Unrecovered != 0 {
		t.Fatalf("phantom outages: recoveries=%d unrecovered=%d", rep.Recoveries, rep.Unrecovered)
	}
	// The headline counters exist (as explicit zeros) even on clean runs.
	if reg.Counter("chaos.mttr_us").Value() != 0 || reg.Counter("chaos.unrecovered").Value() != 0 {
		t.Fatal("clean-run counters should be explicit zeros")
	}
}

func TestSLOCountsUnrecoveredOutages(t *testing.T) {
	tb, g, inj := chaosRig(t, 42)
	reg := obs.NewRegistry()
	nominal := model.PacketsPerSecond(model.LineRateUDP, model.FrameSize)
	slo := chaos.NewSLO(tb.Eng, reg, nominal, func() int64 { return g.Recv.Stats.AppPackets })
	slo.Attach(inj)
	// Stop the monitor: nothing fails over, so a long flap never recovers
	// within the horizon.
	g.Bond.StopMonitor()
	inj.MustSchedule(fault.Scenario{
		At: units.Time(units.Second), Kind: fault.LinkFlap, Port: 0,
		Duration: 5 * units.Second,
	})
	tb.Eng.RunUntil(units.Time(2 * units.Second))
	rep := slo.Finish()
	tb.StopAll()
	if rep.Unrecovered != 1 || rep.Recoveries != 0 {
		t.Fatalf("unrecovered=%d recoveries=%d, want 1/0", rep.Unrecovered, rep.Recoveries)
	}
	if reg.Counter("chaos.unrecovered").Value() != 1 {
		t.Fatal("chaos.unrecovered not recorded")
	}
}
