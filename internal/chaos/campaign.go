package chaos

import (
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config parameterizes one campaign. The plan it produces depends only on
// the engine seed and these fields — never on what else the simulation
// does — because every draw comes from the "chaos:"+Name sub-stream.
type Config struct {
	Name string
	// Start/End bound the injection window; fault *windows* may extend
	// past End, new injections never do.
	Start, End units.Time
	// Ports and VFsPerPort bound the targets drawn (Scenario.Port indexes
	// the injector's Watch order).
	Ports, VFsPerPort int
	// StormRate is the mean fault arrival rate in faults per simulated
	// second (Poisson arrivals); 0 plans no storm.
	StormRate float64
	// StormKinds are the kinds drawn from; nil means DefaultStormKinds.
	StormKinds []fault.Kind
	// CascadeProb is the chance each planned fault spawns a follow-up
	// fault CascadeDelay after its window clears, on the same port — the
	// fault-during-recovery cascade.
	CascadeProb  float64
	CascadeDelay units.Duration
}

// DefaultStormKinds is every injectable kind.
func DefaultStormKinds() []fault.Kind {
	return []fault.Kind{
		fault.LinkFlap, fault.MailboxDrop, fault.MailboxDelay,
		fault.QueueStall, fault.DeviceReset, fault.SurpriseRemoveVF,
	}
}

// Plan draws a full campaign schedule: Poisson fault arrivals over
// [Start, End) with per-kind parameter jitter, plus recovery cascades.
// Deterministic per (engine seed, cfg); calling it twice on equally-seeded
// engines yields identical plans.
func Plan(eng *sim.Engine, cfg Config) []fault.Scenario {
	rng := eng.Stream("chaos:" + cfg.Name)
	kinds := cfg.StormKinds
	if len(kinds) == 0 {
		kinds = DefaultStormKinds()
	}
	var plan []fault.Scenario
	if cfg.StormRate > 0 {
		for t := cfg.Start; ; {
			t = t.Add(expInterval(rng, cfg.StormRate))
			if t >= cfg.End {
				break
			}
			plan = append(plan, drawOne(rng, cfg, t, kinds[rng.Intn(len(kinds))]))
		}
	}
	// Cascades draw after the storm, so the storm schedule is identical
	// with cascades on or off.
	if cfg.CascadeProb > 0 {
		for _, base := range plan {
			if rng.Float64() >= cfg.CascadeProb {
				continue
			}
			at := base.At.Add(base.Duration).Add(cfg.CascadeDelay)
			c := drawOne(rng, cfg, at, kinds[rng.Intn(len(kinds))])
			c.Port = base.Port // the cascade hits the component still recovering
			if at < cfg.End {
				plan = append(plan, c)
			}
		}
	}
	sortPlan(plan)
	return plan
}

// Spaced plans n injections of one kind at fixed spacing with seeded
// jitter on offsets and fault parameters — the shape recovery-latency
// figures want: every episode fully recovers before the next begins.
func Spaced(eng *sim.Engine, cfg Config, kind fault.Kind, n int, every units.Duration) []fault.Scenario {
	rng := eng.Stream("chaos:" + cfg.Name)
	plan := make([]fault.Scenario, 0, n)
	for i := 0; i < n; i++ {
		at := cfg.Start.Add(units.Duration(i) * every).Add(randDur(rng, 0, every/10))
		plan = append(plan, drawOne(rng, cfg, at, kind))
	}
	return plan
}

// Arm schedules every scenario on the injector, failing on the first
// invalid one (Schedule's errors name the kind and the bad target).
func Arm(inj *fault.Injector, plan []fault.Scenario) error {
	for _, s := range plan {
		if err := inj.Schedule(s); err != nil {
			return err
		}
	}
	return nil
}

// FLRDuringMailboxRetry is the correlated preset for the mailbox/reset
// race: a drop window forces the VF's pending request into its retry
// loop, then a global device reset lands while those retries are still in
// flight — the FLR must abort the mailbox transaction cleanly. The caller
// issues some mailbox traffic (e.g. a VLAN join) just inside the window.
func FLRDuringMailboxRetry(at units.Time, port int) []fault.Scenario {
	return []fault.Scenario{
		{At: at, Kind: fault.MailboxDrop, Port: port, Duration: 4 * units.Millisecond},
		{At: at.Add(units.Millisecond), Kind: fault.DeviceReset, Port: port},
	}
}

// LinkFlapDuringMigration flaps a link mid-pre-copy, so migration chunks
// are lost on the wire and must survive on the channel's retransmissions.
func LinkFlapDuringMigration(migrationStart units.Time, port int) []fault.Scenario {
	return []fault.Scenario{{
		At: migrationStart.Add(500 * units.Millisecond), Kind: fault.LinkFlap,
		Port: port, Duration: 200 * units.Millisecond,
	}}
}

// SurpriseRemoveMidPrecopy yanks the destination-side VF while the source
// is still pre-copying, so the hot add-on at the end finds it missing or
// freshly returned in reset — the migration must complete (possibly
// degraded to PV-only) either way.
func SurpriseRemoveMidPrecopy(migrationStart units.Time, port, vf int, gone units.Duration) []fault.Scenario {
	return []fault.Scenario{{
		At: migrationStart.Add(300 * units.Millisecond), Kind: fault.SurpriseRemoveVF,
		Port: port, VF: vf, Duration: gone,
	}}
}

// drawOne fills one scenario's parameters for the kind. The draw sequence
// is fixed per kind, so a plan is reproducible from the stream alone.
func drawOne(rng *sim.RNG, cfg Config, at units.Time, kind fault.Kind) fault.Scenario {
	s := fault.Scenario{At: at, Kind: kind}
	if cfg.Ports > 1 {
		s.Port = rng.Intn(cfg.Ports)
	}
	ms := units.Millisecond
	switch kind {
	case fault.LinkFlap:
		s.Duration = randDur(rng, 50*ms, 500*ms)
	case fault.MailboxDrop:
		s.Duration = randDur(rng, 1*ms, 5*ms)
	case fault.MailboxDelay:
		s.Duration = randDur(rng, 1*ms, 3*ms)
		s.Delay = randDur(rng, 200*units.Microsecond, 800*units.Microsecond)
	case fault.QueueStall:
		s.VF = drawVF(rng, cfg)
		s.Duration = randDur(rng, 50*ms, 300*ms)
	case fault.DeviceReset:
		// no parameters
	case fault.SurpriseRemoveVF:
		s.VF = drawVF(rng, cfg)
		// Always with a return window: a function gone forever has no
		// recovery to measure, only a failover.
		s.Duration = randDur(rng, 200*ms, 1000*ms)
	}
	return s
}

func drawVF(rng *sim.RNG, cfg Config) int {
	if cfg.VFsPerPort <= 1 {
		return 0
	}
	return rng.Intn(cfg.VFsPerPort)
}

func randDur(rng *sim.RNG, lo, hi units.Duration) units.Duration {
	if hi <= lo {
		return lo
	}
	return lo + units.Duration(rng.Float64()*float64(hi-lo))
}

// expInterval draws a Poisson inter-arrival gap for the given rate
// (events per second).
func expInterval(rng *sim.RNG, rate float64) units.Duration {
	u := rng.Float64()
	return units.Duration(-math.Log(1-u) / rate * float64(units.Second))
}

// sortPlan orders scenarios by injection time (ties broken by kind, then
// target) so Arm schedules them in a stable order regardless of how the
// plan was assembled.
func sortPlan(plan []fault.Scenario) {
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.VF < b.VF
	})
}
