package chaos_test

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/vmm"
)

// TestAllBackendsAuditClean drives line-rate traffic through every datapath
// backend at once — one guest per kind on its own port — and requires the
// generalized conservation audit to come back clean. This is the invariant
// the fig26/fig27 family leans on: whatever a backend drops, it must count.
func TestAllBackendsAuditClean(t *testing.T) {
	tb := core.NewTestbed(core.Config{
		Seed: 7, Ports: len(core.BackendKinds), Opts: vmm.AllOptimizations,
		NetbackThreads: 2, VMDqThreads: 2,
	})
	for i, kind := range core.BackendKinds {
		g, err := tb.AddBackendGuest(kind, "g-"+kind, vmm.HVM, vmm.Kernel2628, i, 0, nil)
		if err != nil {
			t.Fatalf("AddBackendGuest(%s): %v", kind, err)
		}
		tb.StartUDP(g, model.LineRateUDP)
	}
	if got := len(tb.Datapaths()); got != 6 {
		// netback, vmdq, vmdq-fallback, vhost, ovs, swpass
		t.Fatalf("Datapaths() lists %d backends, want 6", got)
	}
	tb.Eng.RunUntil(units.Time(units.Second))
	tb.StopAll()
	if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
		t.Fatalf("backend sweep violated invariants: %v", vs)
	}
	// Every software backend must actually have carried traffic (the wire
	// tap works) — a backend that saw nothing proves the test is vacuous.
	for _, dp := range tb.Datapaths() {
		if dp == tb.VMDq.Fallback() {
			continue // all VMDq guests here own queues; fallback idle
		}
		if dp.Stats().Received == 0 {
			t.Errorf("backend %s carried no traffic", dp.Kind())
		}
	}
}

// TestTamperedDatapathDetected proves the generalized walk actually audits
// the new backends, not just netback and VMDq.
func TestTamperedDatapathDetected(t *testing.T) {
	tb := core.NewTestbed(core.Config{Seed: 7, Ports: 1, Opts: vmm.AllOptimizations})
	if _, err := tb.AddVhostGuest("g", vmm.HVM, vmm.Kernel2628, 0); err != nil {
		t.Fatal(err)
	}
	tb.Vhost.Received += 3
	vs := chaos.CheckTestbed(tb)
	if !hasViolation(vs, "backend-conservation") {
		t.Fatalf("tampered vhost counters not detected: %v", violationNames(vs))
	}
}
