package chaos_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vmm"
)

func stormConfig() chaos.Config {
	return chaos.Config{
		Name:  "test",
		Start: units.Time(units.Second), End: units.Time(6 * units.Second),
		Ports: 2, VFsPerPort: 7, StormRate: 2,
	}
}

// chaosRig is the bonded two-port testbed campaigns run against: VF on
// port 0, PV standby on port 1, miimon monitoring, line-rate UDP.
func chaosRig(t *testing.T, seed uint64) (*core.Testbed, *core.Guest, *fault.Injector) {
	t.Helper()
	tb := core.NewTestbed(core.Config{Seed: seed, Ports: 2, Opts: vmm.AllOptimizations, NetbackThreads: 2})
	g, err := tb.AddBondedGuestOn("guest-1", vmm.HVM, vmm.Kernel2628, 0, 0, 1, netstack.DefaultAIC())
	if err != nil {
		t.Fatal(err)
	}
	g.Bond.StartMonitor(0)
	tb.StartUDP(g, model.LineRateUDP)
	inj := fault.NewInjector(tb.Eng, nil)
	inj.Watch(tb.Ports[0], tb.PFs[0])
	inj.Watch(tb.Ports[1], tb.PFs[1])
	return tb, g, inj
}

func TestPlanDeterministicPerSeed(t *testing.T) {
	cfg := stormConfig()
	a := chaos.Plan(sim.NewEngine(42), cfg)
	b := chaos.Plan(sim.NewEngine(42), cfg)
	if len(a) == 0 {
		t.Fatal("a 2-faults/s storm over 5 s planned nothing")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed and config produced different plans")
	}
	c := chaos.Plan(sim.NewEngine(43), cfg)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical plans")
	}
	// The plan must also be independent of unrelated stream consumption:
	// a campaign drawn after other subsystems used the engine's RNG is
	// the same campaign.
	eng := sim.NewEngine(42)
	eng.Stream("something-else").Uint64()
	d := chaos.Plan(eng, cfg)
	if fmt.Sprint(a) != fmt.Sprint(d) {
		t.Fatal("unrelated stream consumption perturbed the plan")
	}
}

func TestPlanStaysInWindowAndValid(t *testing.T) {
	cfg := stormConfig()
	cfg.CascadeProb, cfg.CascadeDelay = 0.5, 50*units.Millisecond
	plan := chaos.Plan(sim.NewEngine(7), cfg)
	var prev units.Time
	for _, s := range plan {
		if s.At < cfg.Start || s.At >= cfg.End {
			t.Errorf("%s at %v outside [%v, %v)", s.Kind, s.At, cfg.Start, cfg.End)
		}
		if s.At < prev {
			t.Errorf("plan not sorted: %v after %v", s.At, prev)
		}
		prev = s.At
		if s.Port < 0 || s.Port >= cfg.Ports {
			t.Errorf("%s targets port %d of %d", s.Kind, s.Port, cfg.Ports)
		}
		if s.VF < 0 || s.VF >= cfg.VFsPerPort {
			t.Errorf("%s targets VF %d of %d", s.Kind, s.VF, cfg.VFsPerPort)
		}
		switch s.Kind {
		case fault.LinkFlap, fault.MailboxDrop, fault.MailboxDelay,
			fault.QueueStall, fault.SurpriseRemoveVF:
			if s.Duration <= 0 {
				t.Errorf("windowed %s planned without a duration", s.Kind)
			}
		}
		if s.Kind == fault.MailboxDelay && s.Delay <= 0 {
			t.Errorf("mbox-delay planned without a delay")
		}
	}
}

func TestPlanCascadesExtendTheStorm(t *testing.T) {
	base := chaos.Plan(sim.NewEngine(42), stormConfig())
	cfg := stormConfig()
	cfg.CascadeProb, cfg.CascadeDelay = 1.0, 50*units.Millisecond
	with := chaos.Plan(sim.NewEngine(42), cfg)
	if len(with) <= len(base) {
		t.Fatalf("certain cascades added nothing: %d → %d scenarios", len(base), len(with))
	}
	// The storm portion is unchanged: every base scenario appears in the
	// cascaded plan too (cascades only draw after the storm is complete).
	set := make(map[string]bool, len(with))
	for _, s := range with {
		set[fmt.Sprint(s)] = true
	}
	for _, s := range base {
		if !set[fmt.Sprint(s)] {
			t.Fatalf("cascades perturbed the storm: %v missing from cascaded plan", s)
		}
	}
}

func TestSpacedPlansJitteredEpisodes(t *testing.T) {
	cfg := stormConfig()
	every := 2 * units.Second
	plan := chaos.Spaced(sim.NewEngine(9), cfg, fault.QueueStall, 4, every)
	if len(plan) != 4 {
		t.Fatalf("planned %d episodes, want 4", len(plan))
	}
	for i, s := range plan {
		if s.Kind != fault.QueueStall {
			t.Fatalf("episode %d kind = %s", i, s.Kind)
		}
		lo := cfg.Start.Add(units.Duration(i) * every)
		if s.At < lo || s.At > lo.Add(every/10) {
			t.Errorf("episode %d at %v outside [%v, %v]", i, s.At, lo, lo.Add(every/10))
		}
	}
}

func TestArmAppliesWholePlan(t *testing.T) {
	tb, _, inj := chaosRig(t, 42)
	cfg := stormConfig()
	plan := chaos.Plan(tb.Eng, cfg)
	if err := chaos.Arm(inj, plan); err != nil {
		t.Fatal(err)
	}
	tb.Eng.RunUntil(units.Time(8 * units.Second)) // End + the longest window
	tb.StopAll()
	if inj.Injected != int64(len(plan)) {
		t.Fatalf("injected %d of %d planned scenarios", inj.Injected, len(plan))
	}
}

func TestArmReportsInvalidScenario(t *testing.T) {
	tb := core.NewTestbed(core.Config{Ports: 1, Opts: vmm.AllOptimizations})
	inj := fault.NewInjector(tb.Eng, nil)
	inj.Watch(tb.Ports[0], tb.PFs[0])
	err := chaos.Arm(inj, []fault.Scenario{
		{At: units.Time(units.Second), Kind: fault.DeviceReset, Port: 0},
		{At: units.Time(units.Second), Kind: fault.LinkFlap, Port: 5, Duration: units.Second},
	})
	if err == nil {
		t.Fatal("out-of-range port should fail Arm")
	}
	if !strings.Contains(err.Error(), "port index 5") {
		t.Fatalf("error %q does not name the bad target", err)
	}
}

// TestFLRDuringMailboxRetry exercises the correlated preset: a mailbox
// request is forced into its retry loop by the drop window, then the
// global reset lands mid-retry. The FLR path must abort the transaction
// cleanly — no retry exhaustion, driver healthy again afterwards.
func TestFLRDuringMailboxRetry(t *testing.T) {
	tb, g, inj := chaosRig(t, 42)
	at := units.Time(1500 * units.Millisecond)
	if err := chaos.Arm(inj, chaos.FLRDuringMailboxRetry(at, 0)); err != nil {
		t.Fatal(err)
	}
	tb.Eng.At(at.Add(100*units.Microsecond), "test:vlan", func() {
		if err := g.VF.JoinVLAN(100); err != nil {
			t.Error(err)
		}
	})
	tb.Eng.RunUntil(units.Time(4 * units.Second))
	tb.StopAll()
	if inj.Injected != 2 {
		t.Fatalf("injected = %d, want 2", inj.Injected)
	}
	if g.VF.Reinits < 1 {
		t.Fatalf("reinits = %d, want ≥ 1 (the reset must drive an FLR)", g.VF.Reinits)
	}
	if g.VF.MboxFailures != 0 {
		t.Fatalf("mailbox failures = %d: the FLR must abort the retry loop, not exhaust it", g.VF.MboxFailures)
	}
	if !g.VF.Healthy() || !g.VF.MACConfirmed {
		t.Fatalf("driver not recovered: healthy=%v macOK=%v", g.VF.Healthy(), g.VF.MACConfirmed)
	}
	if vs := chaos.AuditTestbed(tb); len(vs) != 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}
