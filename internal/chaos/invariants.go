// Package chaos composes seeded randomized fault campaigns on top of the
// fault injector and audits system-wide invariants once the dust settles:
// packet conservation through every layer (NIC rings, every software
// datapath backend via the Datapath interface, port in-flight accounting),
// interrupt and watchdog liveness, migration
// termination, and event-pool integrity. A campaign is a pure function of
// (engine seed, campaign name) — drawn eagerly from a named RNG sub-stream
// — so a chaos run is exactly as reproducible as any other experiment.
package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Violation is one failed invariant.
type Violation struct {
	Invariant string // stable kebab-case name ("ring-conservation", ...)
	Where     string // component ("h0:eth0/vf3", "netback", ...)
	Detail    string // the numbers that disagreed
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %s", v.Invariant, v.Where, v.Detail)
}

// SettleWindow is how far an audit advances the engine before checking
// quiesce invariants. Tickers reschedule forever, so a simulation never
// fully drains — but once the sources are stopped this is enough for every
// in-flight completion (wire transfers, MSI injections, netback poll
// rounds, pool jobs) to land.
const SettleWindow = 10 * units.Millisecond

// RecoveryBound is the model's worst-case watchdog recovery latency:
// miimon detection, watchdog backoff, and the FLR quiesce window, with an
// extra FLR of margin. A monitored VF that is recoverable yet still
// unhealthy after this long is a liveness violation, not a slow recovery.
const RecoveryBound = model.MiimonPeriod + model.WatchdogResetBackoff + 2*model.FLRLatency

// Record counts violations into the registry: the headline
// chaos.invariant_violations total (always registered, so a clean run
// reports an explicit zero that reaches the BENCH totals) plus one
// chaos.violations.<invariant> counter per failed invariant.
func Record(reg *obs.Registry, vs []Violation) {
	reg.Counter("chaos.invariant_violations").Add(int64(len(vs)))
	for _, v := range vs {
		reg.Counter("chaos.violations." + v.Invariant).Inc()
	}
}

// AuditTestbed settles the testbed's engine, gives any mid-recovery VF the
// model's recovery bound to come back, and returns every violated
// invariant. It advances simulated time, so call it after measurement.
func AuditTestbed(tb *core.Testbed) []Violation {
	settle(tb.Eng)
	drainPorts(tb.Eng, tb.Ports)
	awaitRecovery(tb.Eng, func() bool { return recoveryPending(tb) })
	return CheckTestbed(tb)
}

// CheckTestbed audits one testbed's invariants at the current instant,
// without advancing time. Most callers want AuditTestbed.
func CheckTestbed(tb *core.Testbed) []Violation {
	var vs []Violation
	checkArena(&vs, tb.Eng)
	checkBed(&vs, tb, "")
	return vs
}

// AuditCluster is AuditTestbed across a cluster sharing one engine, plus
// migration-termination checks for any migrations the caller started.
func AuditCluster(c *cluster.Cluster, migs []*cluster.Migration) []Violation {
	settle(c.Eng)
	for _, h := range c.Hosts() {
		drainPorts(c.Eng, h.Bed.Ports)
	}
	awaitRecovery(c.Eng, func() bool {
		for _, h := range c.Hosts() {
			if recoveryPending(h.Bed) {
				return true
			}
		}
		return false
	})
	var vs []Violation
	checkArena(&vs, c.Eng)
	for _, h := range c.Hosts() {
		checkBed(&vs, h.Bed, h.Name+":")
	}
	vs = append(vs, CheckMigrations(migs)...)
	return vs
}

// CheckMigrations audits migration termination: every started migration
// must have produced a Result — completed or cleanly aborted, never hung —
// and a completed one must have a coherent downtime window.
func CheckMigrations(migs []*cluster.Migration) []Violation {
	var vs []Violation
	for i, m := range migs {
		if m == nil {
			continue
		}
		where := fmt.Sprintf("migration[%d]", i)
		if m.Result == nil {
			vs = append(vs, Violation{"migration-termination", where,
				"no result: neither completed nor aborted"})
			continue
		}
		if m.Result.Err != nil {
			continue // clean abort is a legal terminal state
		}
		if m.Result.DowntimeEnd < m.Result.DowntimeStart || m.Result.DowntimeEnd == 0 {
			vs = append(vs, Violation{"migration-termination", where,
				fmt.Sprintf("completed with incoherent downtime window [%v, %v]",
					m.Result.DowntimeStart, m.Result.DowntimeEnd)})
		}
		if m.Target == nil {
			vs = append(vs, Violation{"migration-termination", where,
				"completed without a restored target guest"})
		}
	}
	return vs
}

func settle(eng *sim.Engine) { eng.RunUntil(eng.Now().Add(SettleWindow)) }

// drainPorts runs the engine past every port's outstanding transfer
// completions. A source that overdrove a path (fig10's inter-VM sender
// outruns the internal DMA engine on purpose) leaves completions
// scheduled beyond the settle window; those batches are in flight, not
// leaked, so the in-flight check must let them land first.
func drainPorts(eng *sim.Engine, ports []*nic.Port) {
	var until units.Time
	for _, p := range ports {
		if q := p.QuiesceAt(); q > until {
			until = q
		}
	}
	if until > eng.Now() {
		eng.RunUntil(until.Add(units.Microsecond))
	}
}

// awaitRecovery runs the engine in miimon-period steps, up to
// RecoveryBound, while any monitored VF still looks recoverable-but-sick —
// so the liveness check below measures "failed to recover within the model
// bound", not "was caught mid-FLR".
func awaitRecovery(eng *sim.Engine, pending func() bool) {
	deadline := eng.Now().Add(RecoveryBound)
	for eng.Now() < deadline && pending() {
		eng.RunUntil(eng.Now().Add(model.MiimonPeriod))
	}
}

// recoveryPending reports whether some monitored, recoverable VF is still
// unhealthy — the states awaitRecovery gives time to resolve.
func recoveryPending(tb *core.Testbed) bool {
	for _, g := range tb.Guests() {
		if !watchdogCovered(g) {
			continue
		}
		if g.VF.ReinitInFlight() || (vfRecoverable(g) && !g.VF.Healthy()) {
			return true
		}
	}
	return false
}

// watchdogCovered reports whether the guest's VF is under a running health
// monitor — the precondition for any liveness promise.
func watchdogCovered(g *core.Guest) bool {
	return g.Bond != nil && g.Bond.Monitoring() && g.VF != nil && g.VF.Attached()
}

// vfRecoverable reports whether the VF's failure, if any, is one the
// watchdog can fix: function present on the bus, link up, DMA engine not
// externally wedged, no FLR already in flight. Link-down, surprise removal
// and active stall windows are the injector's to clear, not the driver's.
func vfRecoverable(g *core.Guest) bool {
	q := g.VF.Queue()
	return g.Port.LinkUp() && q.Function().Config().Present() &&
		!q.Stalled() && !g.VF.ReinitInFlight()
}

func checkArena(vs *[]Violation, eng *sim.Engine) {
	if n := eng.Arena().Corruptions(); n > 0 {
		*vs = append(*vs, Violation{"pool-integrity", "sim.Arena",
			fmt.Sprintf("%d pool corruptions (double-put or unpooled recycle)", n)})
	}
}

// checkBed audits one testbed's layers; prefix disambiguates hosts sharing
// a cluster (port names already carry it).
func checkBed(vs *[]Violation, tb *core.Testbed, prefix string) {
	now := tb.Eng.Now()
	for _, p := range tb.Ports {
		checkQueue(vs, now, p.PFQueue())
		for i := 0; i < p.NumVFs(); i++ {
			checkQueue(vs, now, p.VFQueue(i))
		}
		if n := p.InFlightPackets(); n != 0 {
			*vs = append(*vs, Violation{"port-in-flight", p.Name(),
				fmt.Sprintf("%d packets still in flight after settle", n)})
		}
	}
	// Every software backend — netback, VMDq (and its fallback), vhost,
	// OVS, software passthrough — answers to the same conservation
	// identity through the Datapath interface. Creation order keeps the
	// walk deterministic; a repeated kind (the VMDq fallback is a second
	// Netback) gets an index suffix so violations name the right instance.
	seen := make(map[string]int)
	for _, dp := range tb.Datapaths() {
		kind := dp.Kind()
		seen[kind]++
		where := prefix + kind
		if seen[kind] > 1 {
			where = fmt.Sprintf("%s#%d", where, seen[kind])
		}
		s := dp.Stats()
		checkBackend(vs, where, s.Received, s.Delivered, s.Dropped, s.InFlight)
	}
	for _, g := range tb.Guests() {
		if !watchdogCovered(g) {
			continue
		}
		if vfRecoverable(g) && !g.VF.Healthy() && !g.VF.MboxDead() {
			*vs = append(*vs, Violation{"watchdog-liveness", prefix + g.Dom.Name,
				fmt.Sprintf("monitored VF %s recoverable but unhealthy %v after last chance",
					g.VF.Queue().Name(), RecoveryBound)})
		}
	}
}

// checkQueue audits one receive queue: the ring-conservation identity
// (every accepted packet was drained, still occupies the ring, or was
// wiped by a hardware reset) and interrupt liveness (no spurious firing,
// no occupied-but-unarmed wedge).
func checkQueue(vs *[]Violation, now units.Time, q *nic.Queue) {
	in := q.Stats.RxPackets
	out := q.Stats.Drained + int64(q.Occupied()) + q.Stats.ResetDropped
	if in != out {
		*vs = append(*vs, Violation{"ring-conservation", q.Name(),
			fmt.Sprintf("rx=%d but drained=%d + occupied=%d + reset_dropped=%d",
				in, q.Stats.Drained, q.Occupied(), q.Stats.ResetDropped)})
	}
	if q.Stats.SpuriousIntr > 0 {
		*vs = append(*vs, Violation{"interrupt-liveness", q.Name(),
			fmt.Sprintf("%d interrupts fired with an empty ring", q.Stats.SpuriousIntr)})
	}
	if q.IntrStuck(now) {
		*vs = append(*vs, Violation{"interrupt-liveness", q.Name(),
			fmt.Sprintf("%d packets occupied, interrupts armed, but no throttle timer pending", q.Occupied())})
	}
}

// checkBackend audits a software backend's conservation identity:
// received == delivered + dropped + in-flight, with in-flight drained to
// zero by the settle window.
func checkBackend(vs *[]Violation, where string, received, delivered, dropped, inflight int64) {
	if received != delivered+dropped+inflight {
		*vs = append(*vs, Violation{"backend-conservation", where,
			fmt.Sprintf("received=%d but delivered=%d + dropped=%d + in_flight=%d",
				received, delivered, dropped, inflight)})
	}
	if inflight != 0 {
		*vs = append(*vs, Violation{"backend-quiesce", where,
			fmt.Sprintf("%d packets still in flight after settle", inflight)})
	}
}
