package trace

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestEmitAndEvents(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		b.Emit(units.Time(i), "cat", "name", "")
	}
	ev := b.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	for i, e := range ev {
		if e.At != units.Time(i) {
			t.Fatalf("order broken: %v", ev)
		}
	}
	if b.Total() != 3 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestRingWraps(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 7; i++ {
		b.Emit(units.Time(i), "c", "n", "")
	}
	ev := b.Events()
	if len(ev) != 3 {
		t.Fatalf("retained = %d", len(ev))
	}
	// The three most recent, in order: 4, 5, 6.
	for i, want := range []units.Time{4, 5, 6} {
		if ev[i].At != want {
			t.Fatalf("ring order: %v", ev)
		}
	}
	if b.Total() != 7 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emit(0, "c", "n", "")
	b.Emitf(0, "c", "n", "x=%d", 1)
	if b.Events() != nil || b.Total() != 0 {
		t.Fatal("nil buffer should be inert")
	}
	if b.Filter("x") != nil {
		t.Fatal("nil filter chain")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(8).Filter("keep")
	b.Emit(1, "keep", "a", "")
	b.Emit(2, "drop", "b", "")
	if len(b.Events()) != 1 || b.Events()[0].Category != "keep" {
		t.Fatalf("filter failed: %v", b.Events())
	}
	b.Filter() // clear
	b.Emit(3, "drop", "c", "")
	if len(b.Events()) != 2 {
		t.Fatal("cleared filter should record everything")
	}
}

func TestDumpAndGrep(t *testing.T) {
	b := NewBuffer(8)
	b.Emitf(units.Time(units.Second), "irq", "bind", "vector=%d", 34)
	b.Emit(units.Time(2*units.Second), "hotplug", "remove", "")
	var sb strings.Builder
	b.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "irq: bind (vector=34)") || !strings.Contains(out, "hotplug: remove") {
		t.Fatalf("dump = %q", out)
	}
	if got := b.Grep("vector=34"); len(got) != 1 {
		t.Fatalf("grep = %v", got)
	}
	if got := b.Grep("nothing"); len(got) != 0 {
		t.Fatalf("grep = %v", got)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewBuffer(0)
}
