package trace

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestEmitAndEvents(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		b.Emit(units.Time(i), "cat", "name", "")
	}
	ev := b.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	for i, e := range ev {
		if e.At != units.Time(i) {
			t.Fatalf("order broken: %v", ev)
		}
	}
	if b.Total() != 3 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestRingWraps(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 7; i++ {
		b.Emit(units.Time(i), "c", "n", "")
	}
	ev := b.Events()
	if len(ev) != 3 {
		t.Fatalf("retained = %d", len(ev))
	}
	// The three most recent, in order: 4, 5, 6.
	for i, want := range []units.Time{4, 5, 6} {
		if ev[i].At != want {
			t.Fatalf("ring order: %v", ev)
		}
	}
	if b.Total() != 7 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emit(0, "c", "n", "")
	b.Emitf(0, "c", "n", "x=%d", 1)
	if b.Events() != nil || b.Total() != 0 {
		t.Fatal("nil buffer should be inert")
	}
	if b.Filter("x") != nil {
		t.Fatal("nil filter chain")
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(8).Filter("keep")
	b.Emit(1, "keep", "a", "")
	b.Emit(2, "drop", "b", "")
	if len(b.Events()) != 1 || b.Events()[0].Category != "keep" {
		t.Fatalf("filter failed: %v", b.Events())
	}
	b.Filter() // clear
	b.Emit(3, "drop", "c", "")
	if len(b.Events()) != 2 {
		t.Fatal("cleared filter should record everything")
	}
}

func TestDumpAndGrep(t *testing.T) {
	b := NewBuffer(8)
	b.Emitf(units.Time(units.Second), "irq", "bind", "vector=%d", 34)
	b.Emit(units.Time(2*units.Second), "hotplug", "remove", "")
	var sb strings.Builder
	b.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "irq: bind (vector=34)") || !strings.Contains(out, "hotplug: remove") {
		t.Fatalf("dump = %q", out)
	}
	if got := b.Grep("vector=34"); len(got) != 1 {
		t.Fatalf("grep = %v", got)
	}
	if got := b.Grep("nothing"); len(got) != 0 {
		t.Fatalf("grep = %v", got)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewBuffer(0)
}

// TestRingWrapWithFilter covers the wraparound × Filter interaction: events
// recorded before a filter is installed must survive (in Events() order)
// until overwritten, and Total must count only recorded (post-filter)
// events.
func TestRingWrapWithFilter(t *testing.T) {
	b := NewBuffer(4)
	b.Emit(1, "early", "e1", "")
	b.Emit(2, "early", "e2", "")
	b.Filter("keep")
	// Filtered-out categories neither occupy the ring nor count.
	b.Emit(3, "drop", "d1", "")
	b.Emitf(4, "drop", "d2", "x=%d", 1)
	b.Emit(5, "keep", "k1", "")
	b.Emit(6, "keep", "k2", "")
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, events %v", len(ev), ev)
	}
	for i, want := range []string{"e1", "e2", "k1", "k2"} {
		if ev[i].Name != want {
			t.Fatalf("order: got %v", ev)
		}
	}
	if b.Total() != 4 {
		t.Fatalf("total = %d, want 4 (filtered events must not count)", b.Total())
	}
	// One more recorded event wraps the ring: the oldest pre-filter event
	// is overwritten, the remaining pre-filter event survives in order.
	b.Emit(7, "keep", "k3", "")
	ev = b.Events()
	if len(ev) != 4 || ev[0].Name != "e2" || ev[3].Name != "k3" {
		t.Fatalf("after wrap: %v", ev)
	}
	if b.Total() != 5 {
		t.Fatalf("total = %d (overwritten events still count)", b.Total())
	}
}

// TestEmitfFilteredZeroAllocs is the regression test for the eager-Sprintf
// bug: a filtered-out Emitf must not pay the formatting allocation. Before
// the fix, Sprintf ran unconditionally and allocated its result string.
func TestEmitfFilteredZeroAllocs(t *testing.T) {
	b := NewBuffer(8).Filter("keep")
	allocs := testing.AllocsPerRun(100, func() {
		b.Emitf(0, "dropped", "n", "no interpolation here")
	})
	if allocs != 0 {
		t.Fatalf("filtered-out Emitf allocated %.0f times per call, want 0", allocs)
	}
	var nb *Buffer
	allocs = testing.AllocsPerRun(100, func() {
		nb.Emitf(0, "any", "n", "no interpolation here")
	})
	if allocs != 0 {
		t.Fatalf("nil-buffer Emitf allocated %.0f times per call, want 0", allocs)
	}
}

// BenchmarkEmitfFilteredOut shows the filtered-out fast path: 0 allocs/op.
func BenchmarkEmitfFilteredOut(b *testing.B) {
	buf := NewBuffer(8).Filter("keep")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Emitf(0, "dropped", "n", "no interpolation here")
	}
}

// BenchmarkEmitfRecorded is the recorded path for comparison.
func BenchmarkEmitfRecorded(b *testing.B) {
	buf := NewBuffer(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Emitf(0, "keep", "n", "x=%d", i&255)
	}
}
