// Package trace is a lightweight ring-buffer event tracer for debugging
// simulation runs: components emit (time, category, name, detail) tuples and
// the most recent window can be dumped chronologically. Tracing is opt-in;
// a nil *Buffer is safe to emit into and costs one branch.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/units"
)

// Event is one recorded occurrence.
type Event struct {
	At       units.Time
	Category string
	Name     string
	Detail   string
}

// String renders the event as one line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("[%v] %s: %s", e.At, e.Category, e.Name)
	}
	return fmt.Sprintf("[%v] %s: %s (%s)", e.At, e.Category, e.Name, e.Detail)
}

// Buffer is a fixed-capacity ring of events. The zero value is unusable;
// create with NewBuffer. A nil Buffer discards emits.
type Buffer struct {
	ring  []Event
	next  int
	total int64
	// filter, when non-empty, restricts recording to these categories.
	filter map[string]bool
}

// NewBuffer creates a tracer retaining the most recent capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Filter restricts recording to the given categories (all if none).
func (b *Buffer) Filter(categories ...string) *Buffer {
	if b == nil {
		return nil
	}
	if len(categories) == 0 {
		b.filter = nil
		return b
	}
	b.filter = make(map[string]bool, len(categories))
	for _, c := range categories {
		b.filter[c] = true
	}
	return b
}

// Emit records an event. Safe on a nil receiver.
func (b *Buffer) Emit(at units.Time, category, name, detail string) {
	if b == nil {
		return
	}
	if b.filter != nil && !b.filter[category] {
		return
	}
	e := Event{At: at, Category: category, Name: name, Detail: detail}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.next] = e
	}
	b.next = (b.next + 1) % cap(b.ring)
	b.total++
}

// Emitf records an event with a formatted detail string. Safe on nil. The
// category filter is consulted before formatting, so a filtered-out Emitf
// never pays the Sprintf — the same "costs one branch" contract as Emit.
func (b *Buffer) Emitf(at units.Time, category, name, format string, args ...any) {
	if b == nil || (b.filter != nil && !b.filter[category]) {
		return
	}
	b.Emit(at, category, name, fmt.Sprintf(format, args...))
}

// Total reports how many events were emitted (including overwritten ones).
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	if len(b.ring) < cap(b.ring) {
		out := make([]Event, len(b.ring))
		copy(out, b.ring)
		return out
	}
	out := make([]Event, 0, cap(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Dump writes the retained events, one per line.
func (b *Buffer) Dump(w io.Writer) {
	for _, e := range b.Events() {
		fmt.Fprintln(w, e.String())
	}
}

// Grep returns the retained events whose rendered line contains substr.
func (b *Buffer) Grep(substr string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if strings.Contains(e.String(), substr) {
			out = append(out, e)
		}
	}
	return out
}
