// Package guest models the guest-OS side of the receive path: the softirq /
// socket / application pipeline that consumes what the driver's ISR drains
// from the device, with the per-packet and per-interrupt CPU costs the
// paper's utilization numbers are made of, and the socket-buffer burst limit
// behind §5.3's overflow-avoidance argument.
package guest

import (
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/vmm"
)

// ReceiverStats counts what reached the application.
type ReceiverStats struct {
	AppPackets  int64
	AppBytes    units.Size
	SockDropped int64 // overflow beyond the socket burst capacity
	Interrupts  int64
}

// NetReceiver is one interface's receive pipeline inside a guest (or the
// native host): stack processing, socket buffering, netserver consumption.
type NetReceiver struct {
	hv  *vmm.Hypervisor
	dom *vmm.Domain

	// Burst is the largest per-interrupt batch absorbed without loss
	// (model.SocketBurstCapacity by default).
	Burst int

	// PerPacketExtra adds flavour-specific per-packet cost (netfront ring
	// handling for PV, nothing for a VF).
	PerPacketExtra units.Cycles

	Stats ReceiverStats

	// Latency histograms packet delivery latency (ring wait), the §5.3
	// trade-off the coalescing policies move along.
	Latency *stats.Histogram

	// OnDeliver, when set, runs after each application delivery with the
	// accepted packet count — request/response workloads hook the
	// server's reply here.
	OnDeliver func(pkts int)

	// sampling window for rate observation (AIC input).
	samplePackets int64
}

// NewNetReceiver creates a receiver for the domain with default burst
// capacity.
func NewNetReceiver(hv *vmm.Hypervisor, dom *vmm.Domain) *NetReceiver {
	return &NetReceiver{
		hv: hv, dom: dom, Burst: model.SocketBurstCapacity,
		Latency: stats.NewHistogram(
			50*units.Microsecond, 100*units.Microsecond, 250*units.Microsecond,
			500*units.Microsecond, units.Millisecond, 2*units.Millisecond,
			5*units.Millisecond,
		),
	}
}

// ObserveLatency records the mean ring wait of a drained batch.
func (r *NetReceiver) ObserveLatency(wait units.Duration) {
	r.Latency.Observe(wait)
}

// Domain reports the owning domain.
func (r *NetReceiver) Domain() *vmm.Domain { return r.dom }

// OnInterrupt charges the fixed per-interrupt guest cost (ISR entry, NAPI
// scheduling, softirq dispatch).
func (r *NetReceiver) OnInterrupt() {
	r.Stats.Interrupts++
	r.hv.ChargeGuest(r.dom, "isr", model.GuestPerInterruptCycles)
}

// DeliverBatch processes one drained batch through the stack to the
// application, enforcing the socket burst limit, and reports how many
// packets the application actually received.
func (r *NetReceiver) DeliverBatch(n int, bytes units.Size) int {
	if n <= 0 {
		return 0
	}
	accepted := n
	if r.Burst > 0 && accepted > r.Burst {
		accepted = r.Burst
		r.Stats.SockDropped += int64(n - accepted)
	}
	perPkt := bytes / units.Size(n)
	perPacketCost := model.GuestPerPacketCycles + r.PerPacketExtra
	if r.dom.Type == vmm.PVM {
		// §6.4: every user/kernel crossing in x86-64 XenLinux bounces
		// through the hypervisor to switch page tables.
		perPacketCost += model.PVMSyscallExtraCyclesPerPacket
	}
	r.hv.ChargeGuest(r.dom, "stack", units.Cycles(accepted)*perPacketCost)
	r.Stats.AppPackets += int64(accepted)
	r.Stats.AppBytes += perPkt * units.Size(accepted)
	r.samplePackets += int64(accepted)
	if r.OnDeliver != nil {
		r.OnDeliver(accepted)
	}
	return accepted
}

// TakeSample returns and resets the packet count since the last sample —
// the pps observation AIC feeds into eq. (3).
func (r *NetReceiver) TakeSample() int64 {
	n := r.samplePackets
	r.samplePackets = 0
	return n
}

// GoodputSince reports the goodput between a previous stats snapshot and
// now, over the window.
func GoodputSince(prev, cur ReceiverStats, window units.Duration) units.BitRate {
	return units.RateOf(cur.AppBytes-prev.AppBytes, window)
}

// SenderStats counts transmit-side work.
type SenderStats struct {
	Messages int64
	Packets  int64
	Bytes    units.Size
}

// NetSender models the transmit side of a guest running netperf: syscall
// per message plus per-packet stack cost. The actual movement of bytes is
// done by whatever driver the caller wires up.
type NetSender struct {
	hv  *vmm.Hypervisor
	dom *vmm.Domain

	// PerPacketExtra adds flavour-specific per-packet cost.
	PerPacketExtra units.Cycles

	Stats SenderStats
}

// NewNetSender creates a sender for the domain.
func NewNetSender(hv *vmm.Hypervisor, dom *vmm.Domain) *NetSender {
	return &NetSender{hv: hv, dom: dom}
}

// SendMessage charges the cost of one message of the given size split into
// packets of at most frame bytes, and reports the packet count.
func (s *NetSender) SendMessage(msgSize, frame units.Size) int {
	if frame <= 0 || msgSize <= 0 {
		return 0
	}
	pkts := int((msgSize + frame - 1) / frame)
	cost := model.SyscallPerMessageCycles +
		units.Cycles(pkts)*(model.GuestPerPacketCycles/2+s.PerPacketExtra)
	if s.dom.Type == vmm.PVM {
		cost += model.PVMSyscallExtraCyclesPerPacket
	}
	s.hv.ChargeGuest(s.dom, "send", cost)
	s.Stats.Messages++
	s.Stats.Packets += int64(pkts)
	s.Stats.Bytes += msgSize
	return pkts
}
