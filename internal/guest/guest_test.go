package guest

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vmm"
)

func newHV() (*vmm.Hypervisor, *cpu.Meter, *mem.Machine) {
	eng := sim.NewEngine(1)
	meter := cpu.NewMeter(cpu.System{Threads: model.ServerThreads, Freq: model.ServerFreq})
	fabric := pcie.NewFabric()
	mmu := iommu.New(64)
	fabric.SetIOMMU(mmu)
	return vmm.New(eng, meter, fabric, mmu, vmm.AllOptimizations), meter, mem.NewMachine(model.ServerMemory)
}

func mkGuest(t *testing.T, hv *vmm.Hypervisor, machine *mem.Machine, typ vmm.DomainType) *vmm.Domain {
	t.Helper()
	dm, err := mem.NewDomainMemory(machine, 64*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	return hv.CreateDomain("g", typ, vmm.Kernel2628, dm)
}

func TestDeliverBatchCounts(t *testing.T) {
	hv, meter, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	got := r.DeliverBatch(10, 15140)
	if got != 10 {
		t.Fatalf("accepted = %d", got)
	}
	if r.Stats.AppPackets != 10 || r.Stats.AppBytes != 15140 {
		t.Fatalf("stats = %+v", r.Stats)
	}
	want := units.Cycles(10) * model.GuestPerPacketCycles
	if c := meter.Cycles(cpu.Account{Domain: "g", Category: "stack"}); c != want {
		t.Fatalf("stack cycles = %d, want %d", c, want)
	}
}

func TestDeliverBatchBurstLimit(t *testing.T) {
	hv, _, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	got := r.DeliverBatch(100, 151400)
	if got != model.SocketBurstCapacity {
		t.Fatalf("accepted = %d, want burst cap %d", got, model.SocketBurstCapacity)
	}
	if r.Stats.SockDropped != int64(100-model.SocketBurstCapacity) {
		t.Fatalf("dropped = %d", r.Stats.SockDropped)
	}
}

func TestDeliverBatchZeroAndNegative(t *testing.T) {
	hv, _, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	if r.DeliverBatch(0, 0) != 0 || r.DeliverBatch(-3, 100) != 0 {
		t.Fatal("degenerate batches should accept nothing")
	}
}

func TestPVMPaysSyscallExtra(t *testing.T) {
	hvH, meterH, machH := newHV()
	hvP, meterP, machP := newHV()
	h := mkGuest(t, hvH, machH, vmm.HVM)
	p := mkGuest(t, hvP, machP, vmm.PVM)
	NewNetReceiver(hvH, h).DeliverBatch(10, 15140)
	NewNetReceiver(hvP, p).DeliverBatch(10, 15140)
	if meterP.DomainCycles("g") <= meterH.DomainCycles("g") {
		t.Fatal("PVM receive should cost more per packet than HVM (page-table switch)")
	}
}

func TestPerPacketExtra(t *testing.T) {
	hv, meter, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	r.PerPacketExtra = model.NetfrontPerPacketCycles
	r.DeliverBatch(10, 15140)
	want := units.Cycles(10) * (model.GuestPerPacketCycles + model.NetfrontPerPacketCycles)
	if c := meter.Cycles(cpu.Account{Domain: "g", Category: "stack"}); c != want {
		t.Fatalf("cycles = %d, want %d", c, want)
	}
}

func TestOnInterruptCharges(t *testing.T) {
	hv, meter, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	r.OnInterrupt()
	r.OnInterrupt()
	if r.Stats.Interrupts != 2 {
		t.Fatal("interrupt count")
	}
	if c := meter.Cycles(cpu.Account{Domain: "g", Category: "isr"}); c != 2*model.GuestPerInterruptCycles {
		t.Fatalf("isr cycles = %d", c)
	}
}

func TestTakeSample(t *testing.T) {
	hv, _, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	r := NewNetReceiver(hv, d)
	r.DeliverBatch(30, 45420)
	if got := r.TakeSample(); got != 30 {
		t.Fatalf("sample = %d", got)
	}
	if got := r.TakeSample(); got != 0 {
		t.Fatalf("second sample = %d, want 0", got)
	}
}

func TestGoodputSince(t *testing.T) {
	prev := ReceiverStats{AppBytes: 0}
	cur := ReceiverStats{AppBytes: 125_000_000} // 1 Gbit
	got := GoodputSince(prev, cur, units.Second)
	if got != units.Gbps {
		t.Fatalf("goodput = %v", got)
	}
}

func TestSenderMessageSplitting(t *testing.T) {
	hv, meter, machine := newHV()
	d := mkGuest(t, hv, machine, vmm.HVM)
	s := NewNetSender(hv, d)
	pkts := s.SendMessage(4000, 1500)
	if pkts != 3 {
		t.Fatalf("packets = %d, want 3", pkts)
	}
	if s.Stats.Messages != 1 || s.Stats.Packets != 3 || s.Stats.Bytes != 4000 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	if meter.DomainCycles("g") == 0 {
		t.Fatal("sender cycles not charged")
	}
	if s.SendMessage(0, 1500) != 0 || s.SendMessage(100, 0) != 0 {
		t.Fatal("degenerate messages")
	}
}

func TestSenderSyscallAmortization(t *testing.T) {
	// Bigger messages → fewer syscalls per byte → fewer cycles per byte
	// (the Fig. 13/14 message-size effect).
	cost := func(msg units.Size) float64 {
		hv, meter, machine := newHV()
		d := mkGuest(t, hv, machine, vmm.HVM)
		s := NewNetSender(hv, d)
		var sent units.Size
		for sent < 1_000_000 {
			s.SendMessage(msg, 1500)
			sent += msg
		}
		return float64(meter.DomainCycles("g")) / float64(sent)
	}
	if cost(4000) >= cost(1500) {
		t.Fatal("larger messages should cost fewer cycles per byte")
	}
}

func TestConservationProperty(t *testing.T) {
	// accepted + dropped == offered, for any batch sequence.
	prop := func(raw []uint8) bool {
		hv, _, machine := newHV()
		d := hv.CreateDomain("g", vmm.HVM, vmm.Kernel2628, nil)
		_ = machine
		r := NewNetReceiver(hv, d)
		var offered int64
		for _, x := range raw {
			n := int(x)%120 + 1
			offered += int64(n)
			r.DeliverBatch(n, units.Size(n)*1514)
		}
		return r.Stats.AppPackets+r.Stats.SockDropped == offered
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
